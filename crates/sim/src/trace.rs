//! Execution tracing: the replayable [`EventLog`] that the record/replay
//! pipeline is built on, plus the older [`Recording`] adapter that wraps
//! an inner runtime for debugging and test assertions.
//!
//! An [`EventLog`] is recorded in one interpreter pass (see
//! [`record_run`]) and can then be replayed into any number of
//! [`TraceConsumer`]s — each replay observes the *identical* method-call
//! sequence a live pure observer would have seen under the same seed, so
//! detection results are bit-identical between the two paths. Logs are
//! compact: one 24-byte [`TraceEvent`] per schedule-visible event, all
//! identities dense `u32` ids, barrier arrival lists stored once in a
//! side table.

use crate::addr::Addr;
use crate::exec::{Directive, OpEvent, RunResult, RunStatus, Runtime, StepLimit};
use crate::ids::{BarrierId, ChanId, CondId, LockId, SiteId, ThreadId};
use crate::ir::{Op, Program, SyscallKind};
use crate::mem::Memory;
use crate::replay::{Live, TraceConsumer};
use crate::sched::Scheduler;

/// One recorded execution event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A shared-memory access the runtime observed. Note: transactional
    /// runtimes may later roll an access back; the event is still
    /// recorded (it reflects what the runtime saw, not the final
    /// architectural history).
    Access {
        /// Global step at which it executed.
        step: u64,
        /// Executing thread.
        thread: ThreadId,
        /// Static site.
        site: SiteId,
        /// Resolved address.
        addr: Addr,
        /// True for writes and RMWs.
        is_write: bool,
    },
    /// A synchronization operation that architecturally completed.
    Sync {
        /// Global step.
        step: u64,
        /// Executing thread.
        thread: ThreadId,
        /// Static site.
        site: SiteId,
        /// The operation.
        op: Op,
    },
    /// A barrier released with the given participant count.
    BarrierRelease {
        /// The barrier.
        barrier: BarrierId,
        /// How many threads it released.
        participants: usize,
    },
    /// A thread finished.
    ThreadDone {
        /// The thread.
        thread: ThreadId,
    },
}

impl Event {
    /// The step of this event, if it carries one.
    pub fn step(&self) -> Option<u64> {
        match self {
            Event::Access { step, .. } | Event::Sync { step, .. } => Some(*step),
            _ => None,
        }
    }
}

/// Classifies one [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceEventKind {
    /// Shared read; `arg` is the resolved address.
    Read,
    /// Shared write; `arg` is the resolved address.
    Write,
    /// Atomic read-modify-write; `arg` is the resolved address.
    Rmw,
    /// Mutex acquired; `arg` is the lock id.
    Acquire,
    /// Mutex released; `arg` is the lock id.
    Release,
    /// Semaphore posted; `arg` is the condition id.
    Signal,
    /// Wait satisfied; `arg` is the condition id.
    Wait,
    /// Thread spawned; `arg` is the child thread id.
    Spawn,
    /// Join satisfied; `arg` is the child thread id.
    Join,
    /// Barrier arrival; `arg` is the barrier id.
    BarrierArrive,
    /// Barrier release; `arg` indexes the log's arrival side table.
    BarrierRelease,
    /// Thread finished; `thread` is the finishing thread.
    ThreadDone,
    /// Thread-local computation; `arg` is the unit count.
    Compute,
    /// System call; `arg` encodes the [`SyscallKind`].
    Syscall,
    /// Channel send completed; `arg` is the channel id.
    ChanSend,
    /// Channel receive completed; `arg` is the channel id.
    ChanRecv,
}

/// One schedule-visible event in an [`EventLog`]: a compact (24-byte)
/// dense-id record whose `arg` field is interpreted per
/// [`TraceEventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceEventKind,
    /// Executing thread (unused for [`TraceEventKind::BarrierRelease`]).
    pub thread: ThreadId,
    /// Static site (unused for [`TraceEventKind::BarrierRelease`] and
    /// [`TraceEventKind::ThreadDone`]).
    pub site: SiteId,
    /// Kind-specific payload — see [`TraceEventKind`].
    pub arg: u64,
}

const SYSCALL_CODES: [SyscallKind; 4] = [
    SyscallKind::Io,
    SyscallKind::Alloc,
    SyscallKind::Free,
    SyscallKind::Other,
];

fn syscall_code(k: SyscallKind) -> u64 {
    SYSCALL_CODES
        .iter()
        .position(|&s| s == k)
        .expect("every SyscallKind has a code") as u64
}

/// Loop-weighted static operation counts of a program, by base-cost
/// class. Because architectural costs are uniform within each class, a
/// census is all a cost model needs to compute a program's baseline
/// cycles — which is how a replay prices a run without the [`Program`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCensus {
    /// Dynamic shared-memory accesses (reads, writes, RMWs, indexed).
    pub mem_accesses: u64,
    /// Total `Compute` units (already multiplied out).
    pub compute_units: u64,
    /// Dynamic synchronization operations (incl. barrier arrivals).
    pub sync_ops: u64,
    /// Dynamic system calls.
    pub syscalls: u64,
}

impl OpCensus {
    /// Counts `p`'s dynamic operations by class (instrumentation markers
    /// are not counted; they have no architectural cost).
    pub fn of(p: &Program) -> Self {
        OpCensus {
            mem_accesses: p.fold_dynamic(|op| u64::from(op.is_data_access())),
            compute_units: p.fold_dynamic(|op| match op {
                Op::Compute(n) => u64::from(*n),
                _ => 0,
            }),
            sync_ops: p.fold_dynamic(|op| u64::from(op.is_sync())),
            syscalls: p.fold_dynamic(|op| u64::from(matches!(op, Op::Syscall(_)))),
        }
    }
}

/// A [`TraceConsumer`] that accumulates the event stream of one run;
/// [`record_run`] wraps it in [`Live`] and assembles the [`EventLog`].
#[derive(Debug, Default)]
pub struct EventLogBuilder {
    events: Vec<TraceEvent>,
    arrivals: Vec<(ThreadId, SiteId)>,
    releases: Vec<(BarrierId, u32, u32)>,
}

impl EventLogBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: TraceEventKind, thread: ThreadId, site: SiteId, arg: u64) {
        self.events.push(TraceEvent {
            kind,
            thread,
            site,
            arg,
        });
    }
}

impl TraceConsumer for EventLogBuilder {
    fn read(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.push(TraceEventKind::Read, t, site, addr.0);
    }

    fn write(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.push(TraceEventKind::Write, t, site, addr.0);
    }

    fn rmw(&mut self, t: ThreadId, site: SiteId, addr: Addr) {
        self.push(TraceEventKind::Rmw, t, site, addr.0);
    }

    fn acquire(&mut self, t: ThreadId, site: SiteId, l: LockId) {
        self.push(TraceEventKind::Acquire, t, site, u64::from(l.0));
    }

    fn release(&mut self, t: ThreadId, site: SiteId, l: LockId) {
        self.push(TraceEventKind::Release, t, site, u64::from(l.0));
    }

    fn signal(&mut self, t: ThreadId, site: SiteId, c: CondId) {
        self.push(TraceEventKind::Signal, t, site, u64::from(c.0));
    }

    fn wait(&mut self, t: ThreadId, site: SiteId, c: CondId) {
        self.push(TraceEventKind::Wait, t, site, u64::from(c.0));
    }

    fn spawn(&mut self, t: ThreadId, site: SiteId, child: ThreadId) {
        self.push(TraceEventKind::Spawn, t, site, u64::from(child.0));
    }

    fn join(&mut self, t: ThreadId, site: SiteId, child: ThreadId) {
        self.push(TraceEventKind::Join, t, site, u64::from(child.0));
    }

    fn barrier_arrive(&mut self, t: ThreadId, site: SiteId, b: BarrierId) {
        self.push(TraceEventKind::BarrierArrive, t, site, u64::from(b.0));
    }

    fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        let start = self.arrivals.len() as u32;
        self.arrivals.extend_from_slice(arrivals);
        let idx = self.releases.len() as u64;
        self.releases.push((b, start, arrivals.len() as u32));
        self.push(
            TraceEventKind::BarrierRelease,
            ThreadId::default(),
            SiteId::default(),
            idx,
        );
    }

    fn compute(&mut self, t: ThreadId, site: SiteId, units: u32) {
        self.push(TraceEventKind::Compute, t, site, u64::from(units));
    }

    fn syscall(&mut self, t: ThreadId, site: SiteId, kind: SyscallKind) {
        self.push(TraceEventKind::Syscall, t, site, syscall_code(kind));
    }

    fn chan_send(&mut self, t: ThreadId, site: SiteId, ch: ChanId) {
        self.push(TraceEventKind::ChanSend, t, site, u64::from(ch.0));
    }

    fn chan_recv(&mut self, t: ThreadId, site: SiteId, ch: ChanId) {
        self.push(TraceEventKind::ChanRecv, t, site, u64::from(ch.0));
    }

    fn thread_done(&mut self, t: ThreadId) {
        self.push(TraceEventKind::ThreadDone, t, SiteId::default(), 0);
    }
}

/// One recorded execution, replayable into any number of
/// [`TraceConsumer`]s. Carries everything a replayed analysis needs that
/// a live run would otherwise pull from the machine or the program: the
/// final memory state, the interpreter result, and a static [`OpCensus`]
/// for cost accounting.
#[derive(Debug, Clone)]
pub struct EventLog {
    threads: usize,
    events: Vec<TraceEvent>,
    arrivals: Vec<(ThreadId, SiteId)>,
    releases: Vec<(BarrierId, u32, u32)>,
    census: OpCensus,
    result: RunResult,
    memory: Memory,
}

impl EventLog {
    /// Number of threads in the recorded program.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded program's static operation census.
    pub fn census(&self) -> OpCensus {
        self.census
    }

    /// The interpreter result of the recorded run.
    pub fn result(&self) -> &RunResult {
        &self.result
    }

    /// Final shared-memory state of the recorded run.
    pub fn final_memory(&self) -> &Memory {
        &self.memory
    }

    /// The arrival list of a [`TraceEventKind::BarrierRelease`] event
    /// (pass the event's `arg`). Returns the barrier and its arrivals in
    /// arrival order.
    pub fn release_arrivals(&self, release_idx: u64) -> (BarrierId, &[(ThreadId, SiteId)]) {
        let (b, start, len) = self.releases[release_idx as usize];
        (b, &self.arrivals[start as usize..(start + len) as usize])
    }

    /// Serializes the log to a stable, self-describing byte format
    /// (little-endian, magic + version header) for the on-disk trace
    /// cache. [`from_bytes`](EventLog::from_bytes) round-trips exactly:
    /// replaying a deserialized log drives a consumer through the
    /// identical call sequence.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.events.len() * 17 + self.memory.len() * 16);
        put_u64(&mut out, LOG_MAGIC);
        put_u64(&mut out, LOG_VERSION);
        put_u64(&mut out, self.threads as u64);
        put_u64(&mut out, self.census.mem_accesses);
        put_u64(&mut out, self.census.compute_units);
        put_u64(&mut out, self.census.sync_ops);
        put_u64(&mut out, self.census.syscalls);
        put_u64(&mut out, self.result.steps);
        match &self.result.status {
            RunStatus::Done => put_u64(&mut out, 0),
            RunStatus::Deadlock => put_u64(&mut out, 1),
            RunStatus::StepLimit => put_u64(&mut out, 2),
            RunStatus::Fault(msg) => {
                put_u64(&mut out, 3);
                put_u64(&mut out, msg.len() as u64);
                out.extend_from_slice(msg.as_bytes());
            }
        }
        put_u64(&mut out, self.events.len() as u64);
        for e in &self.events {
            out.push(e.kind as u8);
            out.extend_from_slice(&e.thread.0.to_le_bytes());
            out.extend_from_slice(&e.site.0.to_le_bytes());
            put_u64(&mut out, e.arg);
        }
        put_u64(&mut out, self.arrivals.len() as u64);
        for &(t, s) in &self.arrivals {
            out.extend_from_slice(&t.0.to_le_bytes());
            out.extend_from_slice(&s.0.to_le_bytes());
        }
        put_u64(&mut out, self.releases.len() as u64);
        for &(b, start, len) in &self.releases {
            out.extend_from_slice(&b.0.to_le_bytes());
            out.extend_from_slice(&start.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        put_u64(&mut out, self.memory.len() as u64);
        for (a, v) in self.memory.iter() {
            put_u64(&mut out, a.0);
            put_u64(&mut out, v);
        }
        out
    }

    /// Deserializes a log written by [`to_bytes`](EventLog::to_bytes).
    ///
    /// # Errors
    ///
    /// A description of the corruption (bad magic, unknown version,
    /// truncation, invalid event kind). Cache readers treat any error as
    /// a miss and re-record.
    pub fn from_bytes(bytes: &[u8]) -> Result<EventLog, String> {
        let mut c = Cursor { b: bytes, pos: 0 };
        if c.u64()? != LOG_MAGIC {
            return Err("bad magic".into());
        }
        let version = c.u64()?;
        if version != LOG_VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let threads = c.u64()? as usize;
        let census = OpCensus {
            mem_accesses: c.u64()?,
            compute_units: c.u64()?,
            sync_ops: c.u64()?,
            syscalls: c.u64()?,
        };
        let steps = c.u64()?;
        let status = match c.u64()? {
            0 => RunStatus::Done,
            1 => RunStatus::Deadlock,
            2 => RunStatus::StepLimit,
            3 => {
                let len = c.u64()? as usize;
                let raw = c.take(len)?;
                RunStatus::Fault(String::from_utf8(raw.to_vec()).map_err(|_| "bad fault string")?)
            }
            s => return Err(format!("unknown run status {s}")),
        };
        let n_events = c.u64()? as usize;
        let mut events = Vec::with_capacity(n_events.min(bytes.len() / 17));
        for _ in 0..n_events {
            let code = c.u8()?;
            let kind = kind_from_code(code).ok_or_else(|| format!("bad event kind {code}"))?;
            events.push(TraceEvent {
                kind,
                thread: ThreadId(c.u32()?),
                site: SiteId(c.u32()?),
                arg: c.u64()?,
            });
        }
        let n_arrivals = c.u64()? as usize;
        let mut arrivals = Vec::with_capacity(n_arrivals.min(bytes.len() / 8));
        for _ in 0..n_arrivals {
            arrivals.push((ThreadId(c.u32()?), SiteId(c.u32()?)));
        }
        let n_releases = c.u64()? as usize;
        let mut releases = Vec::with_capacity(n_releases.min(bytes.len() / 12));
        for _ in 0..n_releases {
            releases.push((BarrierId(c.u32()?), c.u32()?, c.u32()?));
        }
        let n_cells = c.u64()? as usize;
        let mut memory = Memory::new();
        for _ in 0..n_cells {
            let a = Addr(c.u64()?);
            let v = c.u64()?;
            memory.store(a, v);
        }
        if c.pos != bytes.len() {
            return Err("trailing bytes".into());
        }
        Ok(EventLog {
            threads,
            events,
            arrivals,
            releases,
            census,
            result: RunResult { status, steps },
            memory,
        })
    }

    /// Drives `consumer` through the recorded event stream. The call
    /// sequence is identical to what the consumer would have observed
    /// live inside [`Live`] during the recorded run.
    pub fn replay<C: TraceConsumer>(&self, consumer: &mut C) {
        for e in &self.events {
            let (t, site) = (e.thread, e.site);
            match e.kind {
                TraceEventKind::Read => consumer.read(t, site, Addr(e.arg)),
                TraceEventKind::Write => consumer.write(t, site, Addr(e.arg)),
                TraceEventKind::Rmw => consumer.rmw(t, site, Addr(e.arg)),
                TraceEventKind::Acquire => consumer.acquire(t, site, LockId(e.arg as u32)),
                TraceEventKind::Release => consumer.release(t, site, LockId(e.arg as u32)),
                TraceEventKind::Signal => consumer.signal(t, site, CondId(e.arg as u32)),
                TraceEventKind::Wait => consumer.wait(t, site, CondId(e.arg as u32)),
                TraceEventKind::Spawn => consumer.spawn(t, site, ThreadId(e.arg as u32)),
                TraceEventKind::Join => consumer.join(t, site, ThreadId(e.arg as u32)),
                TraceEventKind::BarrierArrive => {
                    consumer.barrier_arrive(t, site, BarrierId(e.arg as u32));
                }
                TraceEventKind::BarrierRelease => {
                    let (b, arrivals) = self.release_arrivals(e.arg);
                    consumer.barrier_release(b, arrivals);
                }
                TraceEventKind::ThreadDone => consumer.thread_done(t),
                TraceEventKind::Compute => consumer.compute(t, site, e.arg as u32),
                TraceEventKind::Syscall => {
                    consumer.syscall(t, site, SYSCALL_CODES[e.arg as usize]);
                }
                TraceEventKind::ChanSend => consumer.chan_send(t, site, ChanId(e.arg as u32)),
                TraceEventKind::ChanRecv => consumer.chan_recv(t, site, ChanId(e.arg as u32)),
            }
        }
    }

    /// Replays the log into *every* consumer in one pass over the event
    /// stream: each event is decoded once and dispatched to all
    /// consumers in slice order — the broadcast primitive under
    /// [`crate::replay::fan_out`].
    ///
    /// Byte-identical to calling [`EventLog::replay`] on each consumer
    /// separately (consumers are independent; each still observes the
    /// full call sequence in execution order), but the event stream is
    /// walked and decoded once instead of once per consumer — on a
    /// multi-megabyte log that is the difference between streaming the
    /// log through the cache N times and once.
    pub fn replay_many<C: TraceConsumer>(&self, consumers: &mut [C]) {
        for e in &self.events {
            let (t, site) = (e.thread, e.site);
            match e.kind {
                TraceEventKind::Read => {
                    for c in consumers.iter_mut() {
                        c.read(t, site, Addr(e.arg));
                    }
                }
                TraceEventKind::Write => {
                    for c in consumers.iter_mut() {
                        c.write(t, site, Addr(e.arg));
                    }
                }
                TraceEventKind::Rmw => {
                    for c in consumers.iter_mut() {
                        c.rmw(t, site, Addr(e.arg));
                    }
                }
                TraceEventKind::Acquire => {
                    for c in consumers.iter_mut() {
                        c.acquire(t, site, LockId(e.arg as u32));
                    }
                }
                TraceEventKind::Release => {
                    for c in consumers.iter_mut() {
                        c.release(t, site, LockId(e.arg as u32));
                    }
                }
                TraceEventKind::Signal => {
                    for c in consumers.iter_mut() {
                        c.signal(t, site, CondId(e.arg as u32));
                    }
                }
                TraceEventKind::Wait => {
                    for c in consumers.iter_mut() {
                        c.wait(t, site, CondId(e.arg as u32));
                    }
                }
                TraceEventKind::Spawn => {
                    for c in consumers.iter_mut() {
                        c.spawn(t, site, ThreadId(e.arg as u32));
                    }
                }
                TraceEventKind::Join => {
                    for c in consumers.iter_mut() {
                        c.join(t, site, ThreadId(e.arg as u32));
                    }
                }
                TraceEventKind::BarrierArrive => {
                    for c in consumers.iter_mut() {
                        c.barrier_arrive(t, site, BarrierId(e.arg as u32));
                    }
                }
                TraceEventKind::BarrierRelease => {
                    let (b, arrivals) = self.release_arrivals(e.arg);
                    for c in consumers.iter_mut() {
                        c.barrier_release(b, arrivals);
                    }
                }
                TraceEventKind::ThreadDone => {
                    for c in consumers.iter_mut() {
                        c.thread_done(t);
                    }
                }
                TraceEventKind::Compute => {
                    for c in consumers.iter_mut() {
                        c.compute(t, site, e.arg as u32);
                    }
                }
                TraceEventKind::Syscall => {
                    for c in consumers.iter_mut() {
                        c.syscall(t, site, SYSCALL_CODES[e.arg as usize]);
                    }
                }
                TraceEventKind::ChanSend => {
                    for c in consumers.iter_mut() {
                        c.chan_send(t, site, ChanId(e.arg as u32));
                    }
                }
                TraceEventKind::ChanRecv => {
                    for c in consumers.iter_mut() {
                        c.chan_recv(t, site, ChanId(e.arg as u32));
                    }
                }
            }
        }
    }
}

/// True for the event kinds the indexed sharding path treats as
/// synchronization: the kinds that mutate a happens-before (or lockset)
/// detector's cross-variable state and therefore must reach *every*
/// shard. Barrier arrivals are excluded deliberately — detectors act on
/// the release (which carries the full arrival list), never on the
/// arrival itself — as are atomics (never checked under the C11 model)
/// and the pure bookkeeping kinds (compute, syscall, thread-done).
fn is_sync_kind(kind: TraceEventKind) -> bool {
    matches!(
        kind,
        TraceEventKind::Acquire
            | TraceEventKind::Release
            | TraceEventKind::Signal
            | TraceEventKind::Wait
            | TraceEventKind::Spawn
            | TraceEventKind::Join
            | TraceEventKind::BarrierRelease
            | TraceEventKind::ChanSend
            | TraceEventKind::ChanRecv
    )
}

/// The sync side-stream of one [`EventLog`]: every synchronization /
/// channel event paired with its global event index, plus copies of the
/// barrier side tables so the stream replays without the log in hand.
///
/// A `SyncIndex` is **derived at decode time** ([`SyncIndex::of`]) and
/// never serialized: the wire format stays the flat v2 event stream, and
/// a corrupted or adversarial index can never disagree with the log it
/// was built from. Shards consume this shared stream plus their own
/// [`AccessPartition`] slice through a two-cursor merge
/// ([`crate::replay::replay_indexed`]), so per-shard work is
/// O(accesses/shards + sync) instead of O(all events).
#[derive(Debug, Clone)]
pub struct SyncIndex {
    /// `(global event index, event)` in log order.
    events: Vec<(u64, TraceEvent)>,
    arrivals: Vec<(ThreadId, SiteId)>,
    releases: Vec<(BarrierId, u32, u32)>,
    total_events: u64,
}

impl SyncIndex {
    /// Builds the sync side-stream of `log` in one pass.
    pub fn of(log: &EventLog) -> SyncIndex {
        let events: Vec<(u64, TraceEvent)> = log
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| is_sync_kind(e.kind))
            .map(|(i, e)| (i as u64, *e))
            .collect();
        SyncIndex {
            events,
            arrivals: log.arrivals.clone(),
            releases: log.releases.clone(),
            total_events: log.len() as u64,
        }
    }

    /// The indexed sync events, in log order.
    pub fn events(&self) -> &[(u64, TraceEvent)] {
        &self.events
    }

    /// Number of sync events in the stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the log had no sync events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Length of the log this index was derived from (all kinds).
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// The arrival list of a [`TraceEventKind::BarrierRelease`] event
    /// (pass the event's `arg`), mirroring
    /// [`EventLog::release_arrivals`].
    pub fn release_arrivals(&self, release_idx: u64) -> (BarrierId, &[(ThreadId, SiteId)]) {
        let (b, start, len) = self.releases[release_idx as usize];
        (b, &self.arrivals[start as usize..(start + len) as usize])
    }
}

/// One checkable data access (read or write), pre-decoded and tagged
/// with its global event index. The unit of an [`AccessPartition`]
/// slice: shards consume these directly instead of re-decoding and
/// re-classifying raw [`TraceEvent`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexedAccess {
    /// Global position in the source log's event stream.
    pub idx: u64,
    /// Executing thread.
    pub thread: ThreadId,
    /// Static site.
    pub site: SiteId,
    /// Resolved address.
    pub addr: Addr,
    /// True for writes.
    pub is_write: bool,
}

/// The data accesses of one [`EventLog`], split into per-shard,
/// index-tagged slices in a single pass ([`AccessPartition::of`]).
///
/// Only plain reads and writes are partitioned: atomics never reach a
/// checking detector (C11), so routing them would cost slice space for
/// events every consumer ignores. Each access appears in exactly one
/// slice (the partition property tests pin this), and slices are sorted
/// by `idx` by construction because the partitioner walks the log once
/// in order.
#[derive(Debug, Clone)]
pub struct AccessPartition {
    slices: Vec<Vec<IndexedAccess>>,
}

impl AccessPartition {
    /// Partitions `log`'s reads and writes into `shards` slices routed
    /// by `route(addr, shards)`. The route function is a parameter (not
    /// baked in) because the shard-owner hash lives with the sharded
    /// detectors, a layer above this crate.
    pub fn of(log: &EventLog, shards: usize, route: impl Fn(Addr, usize) -> usize) -> Self {
        let shards = shards.max(1);
        let mut slices: Vec<Vec<IndexedAccess>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, e) in log.events.iter().enumerate() {
            let is_write = match e.kind {
                TraceEventKind::Read => false,
                TraceEventKind::Write => true,
                _ => continue,
            };
            let addr = Addr(e.arg);
            slices[route(addr, shards)].push(IndexedAccess {
                idx: i as u64,
                thread: e.thread,
                site: e.site,
                addr,
                is_write,
            });
        }
        AccessPartition { slices }
    }

    /// Number of shards (slices).
    pub fn shards(&self) -> usize {
        self.slices.len()
    }

    /// Shard `shard`'s accesses, sorted by global event index.
    pub fn slice(&self, shard: usize) -> &[IndexedAccess] {
        &self.slices[shard]
    }

    /// Total partitioned accesses across all slices.
    pub fn total_accesses(&self) -> u64 {
        self.slices.iter().map(|s| s.len() as u64).sum()
    }
}

/// Records one execution of `p` under `sched` into an [`EventLog`]: the
/// single interpreter pass of the record-once/replay-many pipeline.
///
/// The run is a plain uninstrumented execution (direct memory effects,
/// no detection) observed by an [`EventLogBuilder`]; because observers
/// are schedule-invisible, any pure-observer detector replayed from the
/// returned log produces exactly what it would have produced live under
/// the same scheduler state.
pub fn record_run(p: &Program, sched: &mut dyn Scheduler, limit: StepLimit) -> EventLog {
    let mut rt = Live::new(EventLogBuilder::new());
    let mut machine = crate::exec::Machine::new(p);
    let result = machine.run_with_limit(&mut rt, sched, limit);
    let b = rt.into_inner();
    EventLog {
        threads: p.thread_count(),
        events: b.events,
        arrivals: b.arrivals,
        releases: b.releases,
        census: OpCensus::of(p),
        result,
        memory: machine.memory().clone(),
    }
}

/// Wraps an inner [`Runtime`] and records every event it observes.
///
/// ```
/// use txrace_sim::{trace::Recording, DirectRuntime, Machine, ProgramBuilder, RoundRobin};
///
/// let mut b = ProgramBuilder::new(1);
/// let x = b.var("x");
/// b.thread(0).write(x, 1).read(x);
/// let p = b.build();
///
/// let mut rt = Recording::new(DirectRuntime::default());
/// let mut m = Machine::new(&p);
/// m.run(&mut rt, &mut RoundRobin::new());
/// assert_eq!(rt.events().len(), 3); // write, read, thread-done
/// ```
#[derive(Debug)]
pub struct Recording<R> {
    inner: R,
    events: Vec<Event>,
    limit: usize,
}

impl<R: Runtime> Recording<R> {
    /// Records every event (up to a large default cap).
    pub fn new(inner: R) -> Self {
        Recording {
            inner,
            events: Vec::new(),
            limit: 1 << 22,
        }
    }

    /// Caps the number of recorded events (older events are kept; new ones
    /// beyond the cap are dropped).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Consumes the recorder, returning the inner runtime and the events.
    pub fn into_parts(self) -> (R, Vec<Event>) {
        (self.inner, self.events)
    }

    /// Steps at which `site` executed an access.
    pub fn access_steps(&self, site: SiteId) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Access { step, site: s, .. } if *s == site => Some(*step),
                _ => None,
            })
            .collect()
    }

    fn push(&mut self, e: Event) {
        if self.events.len() < self.limit {
            self.events.push(e);
        }
    }
}

impl<R: Runtime> Runtime for Recording<R> {
    fn before_op(&mut self, mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
        self.inner.before_op(mem, ev)
    }

    fn read(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr) -> u64 {
        self.push(Event::Access {
            step: ev.step,
            thread: ev.thread,
            site: ev.site,
            addr,
            is_write: false,
        });
        self.inner.read(mem, ev, addr)
    }

    fn write(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, val: u64) {
        self.push(Event::Access {
            step: ev.step,
            thread: ev.thread,
            site: ev.site,
            addr,
            is_write: true,
        });
        self.inner.write(mem, ev, addr, val);
    }

    fn rmw(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, delta: u64) -> u64 {
        self.push(Event::Access {
            step: ev.step,
            thread: ev.thread,
            site: ev.site,
            addr,
            is_write: true,
        });
        self.inner.rmw(mem, ev, addr, delta)
    }

    fn after_sync(&mut self, mem: &mut Memory, ev: &OpEvent<'_>) {
        self.push(Event::Sync {
            step: ev.step,
            thread: ev.thread,
            site: ev.site,
            op: ev.op,
        });
        self.inner.after_sync(mem, ev);
    }

    fn after_barrier(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.push(Event::BarrierRelease {
            barrier: b,
            participants: arrivals.len(),
        });
        self.inner.after_barrier(b, arrivals);
    }

    fn on_thread_done(&mut self, t: ThreadId) {
        self.push(Event::ThreadDone { thread: t });
        self.inner.on_thread_done(t);
    }
}

/// `b"TXLOG\0\0\x01"` as a little-endian u64: identifies a serialized
/// [`EventLog`].
const LOG_MAGIC: u64 = u64::from_le_bytes(*b"TXLOG\0\0\x01");
/// Bump on any layout change; readers reject other versions. Version 2
/// added the channel event kinds ([`TraceEventKind::ChanSend`]/
/// [`TraceEventKind::ChanRecv`]) — version-1 logs from pre-channel
/// builds are rejected rather than mis-decoded.
pub const LOG_VERSION: u64 = 2;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over a serialized log.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or("truncated log")?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Inverse of `kind as u8` over [`TraceEventKind`]'s `#[repr(u8)]`
/// declaration order.
fn kind_from_code(code: u8) -> Option<TraceEventKind> {
    use TraceEventKind::*;
    Some(match code {
        0 => Read,
        1 => Write,
        2 => Rmw,
        3 => Acquire,
        4 => Release,
        5 => Signal,
        6 => Wait,
        7 => Spawn,
        8 => Join,
        9 => BarrierArrive,
        10 => BarrierRelease,
        11 => ThreadDone,
        12 => Compute,
        13 => Syscall,
        14 => ChanSend,
        15 => ChanRecv,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;
    use crate::sched::RoundRobin;
    use crate::{DirectRuntime, Machine, RunStatus};

    #[test]
    fn records_accesses_and_sync_in_order() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).lock(l).write_l(x, 1, "w").unlock(l);
        b.thread(1).read_l(x, "r");
        let p = b.build();
        let mut rt = Recording::new(DirectRuntime::default());
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);

        let w = p.site("w").unwrap();
        let r = p.site("r").unwrap();
        assert_eq!(rt.access_steps(w).len(), 1);
        assert_eq!(rt.access_steps(r).len(), 1);
        let syncs = rt
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Sync { .. }))
            .count();
        assert_eq!(syncs, 2, "lock and unlock");
        let dones = rt
            .events()
            .iter()
            .filter(|e| matches!(e, Event::ThreadDone { .. }))
            .count();
        assert_eq!(dones, 2);
        // Steps are nondecreasing.
        let steps: Vec<u64> = rt.events().iter().filter_map(Event::step).collect();
        assert!(steps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn limit_caps_recording() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(100, |t| {
            t.read(x);
        });
        let p = b.build();
        let mut rt = Recording::new(DirectRuntime::default()).with_limit(10);
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        m.run(&mut rt, &mut s);
        assert_eq!(rt.events().len(), 10);
    }

    // A consumer that fingerprints every call, order-sensitively.
    #[derive(Default, PartialEq, Debug)]
    struct Fp(Vec<(u8, u32, u32, u64)>);
    impl TraceConsumer for Fp {
        fn read(&mut self, t: ThreadId, s: SiteId, a: Addr) {
            self.0.push((0, t.0, s.0, a.0));
        }
        fn write(&mut self, t: ThreadId, s: SiteId, a: Addr) {
            self.0.push((1, t.0, s.0, a.0));
        }
        fn rmw(&mut self, t: ThreadId, s: SiteId, a: Addr) {
            self.0.push((2, t.0, s.0, a.0));
        }
        fn acquire(&mut self, t: ThreadId, s: SiteId, l: LockId) {
            self.0.push((3, t.0, s.0, u64::from(l.0)));
        }
        fn release(&mut self, t: ThreadId, s: SiteId, l: LockId) {
            self.0.push((4, t.0, s.0, u64::from(l.0)));
        }
        fn signal(&mut self, t: ThreadId, s: SiteId, c: CondId) {
            self.0.push((5, t.0, s.0, u64::from(c.0)));
        }
        fn wait(&mut self, t: ThreadId, s: SiteId, c: CondId) {
            self.0.push((6, t.0, s.0, u64::from(c.0)));
        }
        fn spawn(&mut self, t: ThreadId, s: SiteId, u: ThreadId) {
            self.0.push((7, t.0, s.0, u64::from(u.0)));
        }
        fn join(&mut self, t: ThreadId, s: SiteId, u: ThreadId) {
            self.0.push((8, t.0, s.0, u64::from(u.0)));
        }
        fn barrier_arrive(&mut self, t: ThreadId, s: SiteId, b: BarrierId) {
            self.0.push((9, t.0, s.0, u64::from(b.0)));
        }
        fn barrier_release(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
            self.0.push((10, b.0, 0, arrivals.len() as u64));
            for &(t, s) in arrivals {
                self.0.push((11, t.0, s.0, 0));
            }
        }
        fn compute(&mut self, t: ThreadId, s: SiteId, n: u32) {
            self.0.push((12, t.0, s.0, u64::from(n)));
        }
        fn syscall(&mut self, t: ThreadId, s: SiteId, k: crate::ir::SyscallKind) {
            self.0.push((13, t.0, s.0, syscall_code(k)));
        }
        fn thread_done(&mut self, t: ThreadId) {
            self.0.push((14, t.0, 0, 0));
        }
        fn chan_send(&mut self, t: ThreadId, s: SiteId, ch: ChanId) {
            self.0.push((15, t.0, s.0, u64::from(ch.0)));
        }
        fn chan_recv(&mut self, t: ThreadId, s: SiteId, ch: ChanId) {
            self.0.push((16, t.0, s.0, u64::from(ch.0)));
        }
    }

    #[test]
    fn event_log_replay_reproduces_the_live_stream() {
        use crate::replay::Live;

        // Exercise every event kind: locks, signal/wait, spawn/join,
        // barriers, RMWs, indexed accesses, compute, syscalls.
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let arr = b.array("a", 8);
        let l = b.lock_id("l");
        let c = b.cond_id("c");
        let bar = b.barrier_id("bar");
        let ch = b.chan_id("ch", 2);
        b.thread(0)
            .spawn(ThreadId(2))
            .write(x, 1)
            .signal(c)
            .lock(l)
            .rmw(x, 1)
            .unlock(l)
            .send(ch)
            .barrier(bar)
            .join(ThreadId(2))
            .syscall(crate::ir::SyscallKind::Io);
        b.thread(1)
            .wait(c)
            .loop_n(4, |t| {
                t.read_arr(arr, 8).compute(3);
            })
            .recv(ch)
            .barrier(bar);
        b.thread(2).read(x); // spawn target: starts parked
        let p = b.build();

        let run_live = |seed: u64| {
            let mut rt = Live::new(Fp::default());
            let mut m = Machine::new(&p);
            let mut s = crate::sched::RandomSched::new(seed);
            let r = m.run(&mut rt, &mut s);
            assert_eq!(r.status, RunStatus::Done);
            (rt.into_inner(), m.memory().clone(), r)
        };
        let (live, live_mem, live_run) = run_live(9);

        let mut sched = crate::sched::RandomSched::new(9);
        let log = record_run(&p, &mut sched, StepLimit::default());
        let mut replayed = Fp::default();
        log.replay(&mut replayed);

        assert_eq!(live, replayed, "replayed call sequence diverged");
        assert_eq!(log.final_memory(), &live_mem);
        assert_eq!(log.result(), &live_run);
        assert_eq!(log.thread_count(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.len(), log.events().len());
    }

    #[test]
    fn serialized_log_round_trips_exactly() {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let arr = b.array("arr", 16);
        let l = b.lock_id("l");
        let c = b.cond_id("c");
        let bar = b.barrier_id("bar");
        let ch = b.chan_id("ch", 2);
        b.thread(0)
            .spawn(ThreadId(2))
            .write(x, 1)
            .signal(c)
            .lock(l)
            .rmw(x, 1)
            .unlock(l)
            .send(ch)
            .barrier(bar)
            .join(ThreadId(2))
            .syscall(crate::ir::SyscallKind::Io);
        b.thread(1)
            .wait(c)
            .loop_n(4, |t| {
                t.read_arr(arr, 8).compute(3);
            })
            .recv(ch)
            .barrier(bar);
        b.thread(2).read(x);
        let p = b.build();

        let mut sched = crate::sched::RandomSched::new(9);
        let log = record_run(&p, &mut sched, StepLimit::default());
        let bytes = log.to_bytes();
        let back = EventLog::from_bytes(&bytes).expect("round trip");

        assert_eq!(back.events(), log.events());
        assert_eq!(back.thread_count(), log.thread_count());
        assert_eq!(back.census(), log.census());
        assert_eq!(back.result(), log.result());
        assert_eq!(back.final_memory(), log.final_memory());
        let mut live = Fp::default();
        log.replay(&mut live);
        let mut reloaded = Fp::default();
        back.replay(&mut reloaded);
        assert_eq!(live, reloaded, "replay diverged after deserialization");

        // Corruption is a readable error, never a panic.
        assert!(EventLog::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(EventLog::from_bytes(&[0u8; 16]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(EventLog::from_bytes(&extra).is_err());
    }

    #[test]
    fn stale_wire_versions_are_rejected() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).write(x, 1);
        let p = b.build();
        let mut sched = RoundRobin::new();
        let log = record_run(&p, &mut sched, StepLimit::default());
        let mut bytes = log.to_bytes();
        // Rewrite the version field (second u64) to the pre-channel v1.
        bytes[8..16].copy_from_slice(&1u64.to_le_bytes());
        let err = EventLog::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("unsupported version 1"), "{err}");
    }

    #[test]
    fn census_matches_dynamic_op_classes() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).loop_n(5, |t| {
            t.lock(l).rmw(x, 1).unlock(l).compute(7);
        });
        b.thread(1)
            .read(x)
            .syscall(crate::ir::SyscallKind::Alloc)
            .write(x, 2);
        let p = b.build();
        let c = OpCensus::of(&p);
        assert_eq!(c.mem_accesses, 5 + 2);
        assert_eq!(c.compute_units, 5 * 7);
        assert_eq!(c.sync_ops, 5 * 2);
        assert_eq!(c.syscalls, 1);
    }

    /// A program exercising every event kind, for index/partition tests.
    fn all_kinds_log() -> EventLog {
        let mut b = ProgramBuilder::new(3);
        let x = b.var("x");
        let arr = b.array("a", 8);
        let l = b.lock_id("l");
        let c = b.cond_id("c");
        let bar = b.barrier_id("bar");
        let ch = b.chan_id("ch", 2);
        b.thread(0)
            .spawn(ThreadId(2))
            .write(x, 1)
            .signal(c)
            .lock(l)
            .rmw(x, 1)
            .unlock(l)
            .send(ch)
            .barrier(bar)
            .join(ThreadId(2))
            .syscall(crate::ir::SyscallKind::Io);
        b.thread(1)
            .wait(c)
            .loop_n(4, |t| {
                t.read_arr(arr, 8).compute(3);
            })
            .recv(ch)
            .barrier(bar);
        b.thread(2).read(x);
        let p = b.build();
        let mut sched = crate::sched::RandomSched::new(9);
        record_run(&p, &mut sched, StepLimit::default())
    }

    #[test]
    fn sync_index_carries_exactly_the_sync_events_with_log_positions() {
        let log = all_kinds_log();
        let sync = SyncIndex::of(&log);
        assert_eq!(sync.total_events(), log.len() as u64);
        assert_eq!(sync.len(), sync.events().len());
        assert!(!sync.is_empty());
        // Every entry points back at the identical log event, and the
        // stream is exactly the sync-kind subsequence in order.
        let want: Vec<(u64, TraceEvent)> = log
            .events()
            .iter()
            .enumerate()
            .filter(|(_, e)| is_sync_kind(e.kind))
            .map(|(i, e)| (i as u64, *e))
            .collect();
        assert_eq!(sync.events(), &want[..]);
        assert!(want
            .iter()
            .any(|(_, e)| e.kind == TraceEventKind::ChanSend));
        assert!(want
            .iter()
            .any(|(_, e)| e.kind == TraceEventKind::BarrierRelease));
        // Barrier side tables replay without the log in hand.
        for (idx, e) in sync.events() {
            if e.kind == TraceEventKind::BarrierRelease {
                let (b_from_sync, arr_from_sync) = sync.release_arrivals(e.arg);
                let (b_from_log, arr_from_log) = log.release_arrivals(e.arg);
                assert_eq!(b_from_sync, b_from_log, "idx={idx}");
                assert_eq!(arr_from_sync, arr_from_log);
            }
        }
    }

    #[test]
    fn access_partition_splits_reads_and_writes_exactly_once() {
        let log = all_kinds_log();
        let route = |a: Addr, n: usize| (a.0 as usize / 8) % n;
        for shards in [1usize, 2, 4, 8] {
            let part = AccessPartition::of(&log, shards, route);
            assert_eq!(part.shards(), shards);
            let n_accesses = log
                .events()
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Read | TraceEventKind::Write))
                .count() as u64;
            assert_eq!(part.total_accesses(), n_accesses);
            let mut seen = std::collections::BTreeSet::new();
            for s in 0..shards {
                let slice = part.slice(s);
                assert!(
                    slice.windows(2).all(|w| w[0].idx < w[1].idx),
                    "slices are index-sorted"
                );
                for a in slice {
                    assert_eq!(route(a.addr, shards), s, "routed to the owner");
                    assert!(seen.insert(a.idx), "each access on exactly one shard");
                    let e = log.events()[a.idx as usize];
                    assert_eq!(e.thread, a.thread);
                    assert_eq!(e.site, a.site);
                    assert_eq!(Addr(e.arg), a.addr);
                    assert_eq!(e.kind == TraceEventKind::Write, a.is_write);
                }
            }
        }
    }

    #[test]
    fn barrier_release_is_recorded() {
        let mut b = ProgramBuilder::new(2);
        let bar = b.barrier_id("bar");
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).read(x).barrier(bar);
        }
        let p = b.build();
        let mut rt = Recording::new(DirectRuntime::default());
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        m.run(&mut rt, &mut s);
        assert!(rt.events().iter().any(|e| matches!(
            e,
            Event::BarrierRelease {
                participants: 2,
                ..
            }
        )));
        let (_inner, events) = rt.into_parts();
        assert!(!events.is_empty());
    }
}
