//! Execution tracing: a [`Runtime`] adapter that records the events any
//! inner runtime observes, for debugging, test assertions, and analyses
//! that need the actual interleaving (e.g., measuring how far apart two
//! sites executed).

use crate::addr::Addr;
use crate::exec::{Directive, OpEvent, Runtime};
use crate::ids::{BarrierId, SiteId, ThreadId};
use crate::ir::Op;
use crate::mem::Memory;

/// One recorded execution event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A shared-memory access the runtime observed. Note: transactional
    /// runtimes may later roll an access back; the event is still
    /// recorded (it reflects what the runtime saw, not the final
    /// architectural history).
    Access {
        /// Global step at which it executed.
        step: u64,
        /// Executing thread.
        thread: ThreadId,
        /// Static site.
        site: SiteId,
        /// Resolved address.
        addr: Addr,
        /// True for writes and RMWs.
        is_write: bool,
    },
    /// A synchronization operation that architecturally completed.
    Sync {
        /// Global step.
        step: u64,
        /// Executing thread.
        thread: ThreadId,
        /// Static site.
        site: SiteId,
        /// The operation.
        op: Op,
    },
    /// A barrier released with the given participant count.
    BarrierRelease {
        /// The barrier.
        barrier: BarrierId,
        /// How many threads it released.
        participants: usize,
    },
    /// A thread finished.
    ThreadDone {
        /// The thread.
        thread: ThreadId,
    },
}

impl Event {
    /// The step of this event, if it carries one.
    pub fn step(&self) -> Option<u64> {
        match self {
            Event::Access { step, .. } | Event::Sync { step, .. } => Some(*step),
            _ => None,
        }
    }
}

/// Wraps an inner [`Runtime`] and records every event it observes.
///
/// ```
/// use txrace_sim::{trace::Recording, DirectRuntime, Machine, ProgramBuilder, RoundRobin};
///
/// let mut b = ProgramBuilder::new(1);
/// let x = b.var("x");
/// b.thread(0).write(x, 1).read(x);
/// let p = b.build();
///
/// let mut rt = Recording::new(DirectRuntime::default());
/// let mut m = Machine::new(&p);
/// m.run(&mut rt, &mut RoundRobin::new());
/// assert_eq!(rt.events().len(), 3); // write, read, thread-done
/// ```
#[derive(Debug)]
pub struct Recording<R> {
    inner: R,
    events: Vec<Event>,
    limit: usize,
}

impl<R: Runtime> Recording<R> {
    /// Records every event (up to a large default cap).
    pub fn new(inner: R) -> Self {
        Recording {
            inner,
            events: Vec::new(),
            limit: 1 << 22,
        }
    }

    /// Caps the number of recorded events (older events are kept; new ones
    /// beyond the cap are dropped).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Consumes the recorder, returning the inner runtime and the events.
    pub fn into_parts(self) -> (R, Vec<Event>) {
        (self.inner, self.events)
    }

    /// Steps at which `site` executed an access.
    pub fn access_steps(&self, site: SiteId) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Access { step, site: s, .. } if *s == site => Some(*step),
                _ => None,
            })
            .collect()
    }

    fn push(&mut self, e: Event) {
        if self.events.len() < self.limit {
            self.events.push(e);
        }
    }
}

impl<R: Runtime> Runtime for Recording<R> {
    fn before_op(&mut self, mem: &mut Memory, ev: &OpEvent<'_>) -> Directive {
        self.inner.before_op(mem, ev)
    }

    fn read(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr) -> u64 {
        self.push(Event::Access {
            step: ev.step,
            thread: ev.thread,
            site: ev.site,
            addr,
            is_write: false,
        });
        self.inner.read(mem, ev, addr)
    }

    fn write(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, val: u64) {
        self.push(Event::Access {
            step: ev.step,
            thread: ev.thread,
            site: ev.site,
            addr,
            is_write: true,
        });
        self.inner.write(mem, ev, addr, val);
    }

    fn rmw(&mut self, mem: &mut Memory, ev: &OpEvent<'_>, addr: Addr, delta: u64) -> u64 {
        self.push(Event::Access {
            step: ev.step,
            thread: ev.thread,
            site: ev.site,
            addr,
            is_write: true,
        });
        self.inner.rmw(mem, ev, addr, delta)
    }

    fn after_sync(&mut self, mem: &mut Memory, ev: &OpEvent<'_>) {
        self.push(Event::Sync {
            step: ev.step,
            thread: ev.thread,
            site: ev.site,
            op: ev.op,
        });
        self.inner.after_sync(mem, ev);
    }

    fn after_barrier(&mut self, b: BarrierId, arrivals: &[(ThreadId, SiteId)]) {
        self.push(Event::BarrierRelease {
            barrier: b,
            participants: arrivals.len(),
        });
        self.inner.after_barrier(b, arrivals);
    }

    fn on_thread_done(&mut self, t: ThreadId) {
        self.push(Event::ThreadDone { thread: t });
        self.inner.on_thread_done(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;
    use crate::sched::RoundRobin;
    use crate::{DirectRuntime, Machine, RunStatus};

    #[test]
    fn records_accesses_and_sync_in_order() {
        let mut b = ProgramBuilder::new(2);
        let x = b.var("x");
        let l = b.lock_id("l");
        b.thread(0).lock(l).write_l(x, 1, "w").unlock(l);
        b.thread(1).read_l(x, "r");
        let p = b.build();
        let mut rt = Recording::new(DirectRuntime::default());
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        assert_eq!(m.run(&mut rt, &mut s).status, RunStatus::Done);

        let w = p.site("w").unwrap();
        let r = p.site("r").unwrap();
        assert_eq!(rt.access_steps(w).len(), 1);
        assert_eq!(rt.access_steps(r).len(), 1);
        let syncs = rt
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Sync { .. }))
            .count();
        assert_eq!(syncs, 2, "lock and unlock");
        let dones = rt
            .events()
            .iter()
            .filter(|e| matches!(e, Event::ThreadDone { .. }))
            .count();
        assert_eq!(dones, 2);
        // Steps are nondecreasing.
        let steps: Vec<u64> = rt.events().iter().filter_map(Event::step).collect();
        assert!(steps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn limit_caps_recording() {
        let mut b = ProgramBuilder::new(1);
        let x = b.var("x");
        b.thread(0).loop_n(100, |t| {
            t.read(x);
        });
        let p = b.build();
        let mut rt = Recording::new(DirectRuntime::default()).with_limit(10);
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        m.run(&mut rt, &mut s);
        assert_eq!(rt.events().len(), 10);
    }

    #[test]
    fn barrier_release_is_recorded() {
        let mut b = ProgramBuilder::new(2);
        let bar = b.barrier_id("bar");
        let x = b.var("x");
        for t in 0..2 {
            b.thread(t).read(x).barrier(bar);
        }
        let p = b.build();
        let mut rt = Recording::new(DirectRuntime::default());
        let mut m = Machine::new(&p);
        let mut s = RoundRobin::new();
        m.run(&mut rt, &mut s);
        assert!(rt.events().iter().any(|e| matches!(
            e,
            Event::BarrierRelease {
                participants: 2,
                ..
            }
        )));
        let (_inner, events) = rt.into_parts();
        assert!(!events.is_empty());
    }
}
