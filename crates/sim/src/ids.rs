//! Small typed identifiers used throughout the simulator.
//!
//! Each identifier is a newtype over a machine integer so that, per the
//! newtype guidelines, a [`LockId`] can never be confused with a
//! [`CondId`] or a raw index.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index backing this identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A logical thread index. Thread 0 is the main thread.
    ThreadId,
    "t"
);
id_type!(
    /// A static program site: the identity of one instruction in the IR.
    ///
    /// Race reports are pairs of sites, mirroring the paper's "racy
    /// instruction pair" static counting.
    SiteId,
    "s"
);
id_type!(
    /// A mutex identifier.
    LockId,
    "l"
);
id_type!(
    /// A condition/semaphore identifier used by `Signal`/`Wait`.
    CondId,
    "c"
);
id_type!(
    /// A barrier identifier.
    BarrierId,
    "b"
);
id_type!(
    /// A bounded message channel identifier used by `ChanSend`/`ChanRecv`.
    ChanId,
    "ch"
);
id_type!(
    /// A static loop identity, used by the loop-cut optimization.
    LoopId,
    "loop"
);
id_type!(
    /// A static transactional-region identity assigned by the
    /// transactionalization pass.
    RegionId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert_eq!(SiteId(7).to_string(), "s7");
        assert_eq!(LoopId(1).to_string(), "loop1");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<LockId> = [LockId(2), LockId(0), LockId(1)].into_iter().collect();
        let v: Vec<u32> = set.into_iter().map(|l| l.0).collect();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn from_u32_roundtrips() {
        let s: SiteId = 9u32.into();
        assert_eq!(s.index(), 9);
    }
}
