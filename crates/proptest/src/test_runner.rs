//! The case loop: deterministic per-test seeding, rejection accounting,
//! and failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than the real crate's 256: these tests run full
        // detector pipelines per case, and the seed is deterministic, so
        // breadth comes from explicitly raising `cases` where it pays.
        ProptestConfig { cases: 32 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this case out; try another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Drives the case loop for one `proptest!` test.
pub struct Runner {
    config: ProptestConfig,
    name: &'static str,
}

impl Runner {
    /// `name` should be the fully-qualified test name; it determines the
    /// generator seed.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Runner { config, name }
    }

    /// Runs cases until `config.cases` pass; panics on the first failure
    /// or when rejections make the test vacuous.
    pub fn run(&mut self, mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>) {
        let mut rng = StdRng::seed_from_u64(fnv1a(self.name.as_bytes()));
        let max_rejects = self.config.cases.saturating_mul(16).max(1024);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut attempt = 0u32;
        while passed < self.config.cases {
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest {} is vacuous: {} consecutive-or-total rejections \
                             with only {}/{} cases passed",
                            self.name, rejected, passed, self.config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {} (deterministic seed; rerun reproduces): {}",
                        self.name, attempt, msg
                    );
                }
            }
        }
    }
}

/// FNV-1a over the test's qualified name: stable across runs and
/// platforms, distinct per test.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(fnv1a(b"mod::a"), fnv1a(b"mod::b"));
    }

    #[test]
    fn runner_passes_trivial_property() {
        let mut r = Runner::new(ProptestConfig::with_cases(10), "trivial");
        let mut calls = 0;
        r.run(|_| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 10);
    }

    #[test]
    #[should_panic(expected = "deterministic seed")]
    fn runner_reports_failure_with_case_number() {
        let mut r = Runner::new(ProptestConfig::with_cases(10), "failing");
        r.run(|_| Err(TestCaseError::fail("boom".into())));
    }

    #[test]
    #[should_panic(expected = "vacuous")]
    fn all_rejections_is_vacuous_failure() {
        let mut r = Runner::new(ProptestConfig::with_cases(2), "vacuous");
        r.run(|_| Err(TestCaseError::Reject));
    }
}
