//! Value-generation strategies: deterministic samplers over a shared
//! [`StdRng`]. Unlike the real crate there is no intermediate "value
//! tree" — a strategy maps random bits straight to a value, which is
//! all that is needed without shrinking.

use rand::rngs::StdRng;
use rand::Rng;

/// A source of values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.dyn_sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between type-erased strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; at least one arm, all weights nonzero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().all(|(w, _)| *w > 0),
            "zero weight in prop_oneof!"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
        let mut x = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if x < *w {
                return s.sample(rng);
            }
            x -= w;
        }
        unreachable!("weights summed incorrectly")
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// The result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// The strategy behind [`crate::bool::ANY`].
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

/// Types with a canonical full-domain strategy, for [`crate::any`].
pub trait ArbitraryValue: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The result of [`crate::any`].
pub struct AnyStrategy<T>(pub(crate) core::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
