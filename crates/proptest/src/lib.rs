//! Vendored stand-in for the slice of the `proptest` API this workspace
//! uses, so property tests run with no registry access.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the values that failed;
//!   the seed is deterministic, so rerunning reproduces it exactly.
//! * **Deterministic seeding.** Each test derives its generator seed
//!   from an FNV-1a hash of `module_path!() + "::" + test name`, so a
//!   given test always sees the same case sequence. Any
//!   `proptest-regressions` files on disk are ignored.
//! * `prop_assume!` rejections do not count toward the case budget; if
//!   every attempt is rejected the test fails as vacuous rather than
//!   silently passing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of values from `element`, with
    /// lengths drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::BoolAny;

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;
}

/// Returns the canonical strategy for `T` (`bool` and the primitive
/// integer types are supported).
pub fn any<T: strategy::ArbitraryValue>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(core::marker::PhantomData)
}

/// The glob-import surface mirrored from the real crate.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// item expands to a plain test that samples its inputs
/// deterministically for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::Runner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                runner.run(|prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), prop_rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    let case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strat),*) $body )*
        }
    };
}

/// `assert!` for property tests: fails the current case (with the
/// sampled inputs visible in the message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case without counting it against the budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks one of several strategies per case, optionally weighted
/// (`weight => strategy`). All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
