//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each binary under `src/bin/` reproduces one table or figure; this
//! library holds the per-app evaluation driver, the paper's reference
//! numbers (for side-by-side printing), and small formatting helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod paper;
pub mod pool;
pub mod report;
pub mod runner;

pub use cache::{
    args_after_cache_flag, cache_stats, clear_trace_cache, disable_trace_cache, CacheStats,
};
pub use pool::{map_cells, pool_width};
pub use report::{fmt_x, geomean, json_rows, JsonValue, Table};
pub use runner::{
    evaluate_app, record_workload, record_workload_uncached, replay_scheme, replay_schemes_fanout,
    run_scheme, AppResult, EvalOptions, FanoutOutcome,
};
