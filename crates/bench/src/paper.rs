//! The paper's published numbers (Tables 1 and 2), used for side-by-side
//! comparison in the harness output and in EXPERIMENTS.md.

/// One row of the paper's Table 1 (counts unscaled, as published).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Application name.
    pub name: &'static str,
    /// Committed transactions.
    pub committed: u64,
    /// Conflict aborts.
    pub conflict: u64,
    /// Capacity aborts.
    pub capacity: u64,
    /// Unknown aborts.
    pub unknown: u64,
    /// Races reported by TSan.
    pub tsan_races: u64,
    /// Races reported by TxRace.
    pub txrace_races: u64,
    /// TSan overhead (x).
    pub tsan_overhead: f64,
    /// TxRace overhead (x).
    pub txrace_overhead: f64,
    /// Table 2 recall.
    pub recall: f64,
    /// Table 2 cost-effectiveness vs TSan.
    pub cost_effectiveness: f64,
}

/// Table 1 + Table 2 of the paper, row per application.
pub const TABLE1: &[PaperRow] = &[
    PaperRow {
        name: "blackscholes",
        committed: 131_105,
        conflict: 2,
        capacity: 0,
        unknown: 7,
        tsan_races: 0,
        txrace_races: 0,
        tsan_overhead: 1.85,
        txrace_overhead: 1.82,
        recall: 1.0,
        cost_effectiveness: 1.02,
    },
    PaperRow {
        name: "fluidanimate",
        committed: 17_778_944,
        conflict: 696_789,
        capacity: 10_321,
        unknown: 36_614,
        tsan_races: 1,
        txrace_races: 1,
        tsan_overhead: 15.23,
        txrace_overhead: 6.9,
        recall: 1.0,
        cost_effectiveness: 2.21,
    },
    PaperRow {
        name: "swaptions",
        committed: 160_640_076,
        conflict: 2_599,
        capacity: 557_497,
        unknown: 54_317,
        tsan_races: 0,
        txrace_races: 0,
        tsan_overhead: 6.77,
        txrace_overhead: 3.97,
        recall: 1.0,
        cost_effectiveness: 1.7,
    },
    PaperRow {
        name: "freqmine",
        committed: 84,
        conflict: 0,
        capacity: 3,
        unknown: 26,
        tsan_races: 0,
        txrace_races: 0,
        tsan_overhead: 14.0,
        txrace_overhead: 1.15,
        recall: 1.0,
        cost_effectiveness: 12.17,
    },
    PaperRow {
        name: "vips",
        committed: 707_547,
        conflict: 16_793,
        capacity: 23_403,
        unknown: 14_985,
        tsan_races: 112,
        txrace_races: 79,
        tsan_overhead: 1195.0,
        txrace_overhead: 63.28,
        recall: 0.71,
        cost_effectiveness: 13.32,
    },
    PaperRow {
        name: "raytrace",
        committed: 143,
        conflict: 12,
        capacity: 0,
        unknown: 14,
        tsan_races: 2,
        txrace_races: 2,
        tsan_overhead: 5.09,
        txrace_overhead: 2.68,
        recall: 1.0,
        cost_effectiveness: 1.9,
    },
    PaperRow {
        name: "ferret",
        committed: 208_052,
        conflict: 379,
        capacity: 2_413,
        unknown: 4_263,
        tsan_races: 1,
        txrace_races: 1,
        tsan_overhead: 10.74,
        txrace_overhead: 5.52,
        recall: 1.0,
        cost_effectiveness: 1.95,
    },
    PaperRow {
        name: "x264",
        committed: 36_808,
        conflict: 245,
        capacity: 423,
        unknown: 5_358,
        tsan_races: 64,
        txrace_races: 64,
        tsan_overhead: 6.45,
        txrace_overhead: 5.6,
        recall: 1.0,
        cost_effectiveness: 1.15,
    },
    PaperRow {
        name: "bodytrack",
        committed: 9_950_991,
        conflict: 36_004,
        capacity: 47_050,
        unknown: 2_004_723,
        tsan_races: 8,
        txrace_races: 6,
        tsan_overhead: 12.78,
        txrace_overhead: 8.9,
        recall: 0.75,
        cost_effectiveness: 1.08,
    },
    PaperRow {
        name: "facesim",
        committed: 12_827_334,
        conflict: 1_611,
        capacity: 3_372,
        unknown: 38_563,
        tsan_races: 9,
        txrace_races: 8,
        tsan_overhead: 36.59,
        txrace_overhead: 11.49,
        recall: 0.89,
        cost_effectiveness: 2.83,
    },
    PaperRow {
        name: "streamcluster",
        committed: 756_908,
        conflict: 170_805,
        capacity: 230,
        unknown: 832,
        tsan_races: 4,
        txrace_races: 4,
        tsan_overhead: 25.9,
        txrace_overhead: 2.97,
        recall: 1.0,
        cost_effectiveness: 8.71,
    },
    PaperRow {
        name: "dedup",
        committed: 2_185_219,
        conflict: 106_618,
        capacity: 13_889,
        unknown: 40_177,
        tsan_races: 0,
        txrace_races: 0,
        tsan_overhead: 4.84,
        txrace_overhead: 4.19,
        recall: 1.0,
        cost_effectiveness: 1.15,
    },
    PaperRow {
        name: "canneal",
        committed: 3_200_570,
        conflict: 25_187,
        capacity: 2_896,
        unknown: 106_419,
        tsan_races: 1,
        txrace_races: 1,
        tsan_overhead: 4.39,
        txrace_overhead: 2.97,
        recall: 1.0,
        cost_effectiveness: 1.48,
    },
    PaperRow {
        name: "apache",
        committed: 310_781,
        conflict: 227,
        capacity: 446,
        unknown: 9_793,
        tsan_races: 0,
        txrace_races: 0,
        tsan_overhead: 3.05,
        txrace_overhead: 1.97,
        recall: 1.0,
        cost_effectiveness: 1.55,
    },
];

/// Paper geometric means (Table 1 / Table 2 bottom rows).
pub const GEOMEAN_TSAN_OVERHEAD: f64 = 11.68;
/// TxRace (ProfLoopcut) overhead geomean.
pub const GEOMEAN_TXRACE_OVERHEAD: f64 = 4.65;
/// TxRace-DynLoopcut overhead geomean (Figure 9).
pub const GEOMEAN_TXRACE_DYN_OVERHEAD: f64 = 5.34;
/// Recall geomean (Table 2).
pub const GEOMEAN_RECALL: f64 = 0.95;
/// Cost-effectiveness geomean (Table 2).
pub const GEOMEAN_CE: f64 = 2.38;

/// Looks up the paper row for `name`.
pub fn row(name: &str) -> Option<&'static PaperRow> {
    TABLE1.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fourteen_rows_present() {
        assert_eq!(TABLE1.len(), 14);
        assert!(row("vips").is_some());
        assert!(row("nonesuch").is_none());
    }

    #[test]
    fn paper_geomeans_are_consistent_with_rows() {
        let g = |f: fn(&PaperRow) -> f64| {
            let prod: f64 = TABLE1.iter().map(|r| f(r).ln()).sum();
            (prod / TABLE1.len() as f64).exp()
        };
        assert!((g(|r| r.tsan_overhead) - GEOMEAN_TSAN_OVERHEAD).abs() < 0.5);
        assert!((g(|r| r.txrace_overhead) - GEOMEAN_TXRACE_OVERHEAD).abs() < 0.5);
        assert!((g(|r| r.recall) - GEOMEAN_RECALL).abs() < 0.02);
        assert!((g(|r| r.cost_effectiveness) - GEOMEAN_CE).abs() < 0.1);
    }
}
