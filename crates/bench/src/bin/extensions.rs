//! The paper's §9 future-work directions, implemented and measured:
//!
//! * **Conflict-address hints** (the TxIntro/RaceTM direction): if future
//!   hardware reports the conflicting cache line, the conflict slow path
//!   can check only accesses to that line instead of the whole region —
//!   same racy pair found, far fewer shadow checks.
//! * **Slow-path sampling** (the LiteRace/Pacer direction): sample the
//!   slow path's access checks, trading a little recall for cost.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin extensions [workers] [seed]
//! ```

use txrace::{recall, Detector, Knobs, Scheme, TxRaceOpts};
use txrace_bench::{fmt_x, geomean, run_scheme, Table};
use txrace_htm::HtmConfig;
use txrace_workloads::all_workloads;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("TxRace extensions (paper §9 directions) — workers={workers}, seed={seed}\n");
    let mut t = Table::new(&[
        "application",
        "TxRace",
        "+conflict hints",
        "+slow sampling 50%",
        "recall",
        "hints recall",
        "sampling recall",
    ]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut recs: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for w in all_workloads(workers) {
        let truth = run_scheme(&w, Scheme::Tsan, seed);
        let base = run_scheme(&w, Scheme::txrace(), seed);

        let hint_opts = TxRaceOpts {
            conflict_hints: true,
            ..TxRaceOpts::default()
        };
        let hint_htm = HtmConfig {
            report_conflict_address: true,
            ..HtmConfig::default()
        };
        let hints = Detector::new(w.config(Scheme::TxRace(hint_opts), seed).with_htm(hint_htm))
            .run(&w.program);

        let samp_cfg = w
            .config(Scheme::txrace(), seed)
            .with_knobs(Knobs::default().with_sampling(0.5));
        let samp = Detector::new(samp_cfg).run(&w.program);
        assert!(
            samp.completed(),
            "{}: sampling run did not complete",
            w.name
        );

        let r0 = recall(&base.races, &truth.races);
        let r1 = recall(&hints.races, &truth.races);
        let r2 = recall(&samp.races, &truth.races);
        t.row(vec![
            w.name.to_string(),
            fmt_x(base.overhead),
            fmt_x(hints.overhead),
            fmt_x(samp.overhead),
            format!("{r0:.2}"),
            format!("{r1:.2}"),
            format!("{r2:.2}"),
        ]);
        for (i, v) in [base.overhead, hints.overhead, samp.overhead]
            .into_iter()
            .enumerate()
        {
            cols[i].push(v);
        }
        for (i, v) in [r0, r1, r2].into_iter().enumerate() {
            recs[i].push(v.max(1e-3));
        }
    }
    println!("{}", t.render());
    println!(
        "geo.mean overhead: TxRace {}, +hints {}, +sampling {}",
        fmt_x(geomean(&cols[0])),
        fmt_x(geomean(&cols[1])),
        fmt_x(geomean(&cols[2])),
    );
    println!(
        "geo.mean recall:   TxRace {:.2}, +hints {:.2}, +sampling {:.2}",
        geomean(&recs[0]),
        geomean(&recs[1]),
        geomean(&recs[2]),
    );
    println!("\nhints shrink the conflict slow path with (near-)unchanged recall —");
    println!("the paper's \"more efficient slow path\" if hardware reported addresses.");
}
