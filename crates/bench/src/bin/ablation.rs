//! Ablation studies for the design choices DESIGN.md calls out (beyond
//! the paper's own Figure 9 loop-cut ablation):
//!
//! 1. **Fast-path happens-before tracking** (paper §5, Figure 6): with it
//!    disabled, the slow path reports false positives across fast-path
//!    synchronization edges — completeness breaks.
//! 2. **Ideal HTM** (paper §8.2 envisions it): no capacity limits and no
//!    spurious aborts; TxRace falls back to the slow path only on true
//!    conflicts, and overhead drops accordingly.
//! 3. **The `K < 5` small-region heuristic** (paper §4.3): sweep K and
//!    watch the tradeoff between transaction-management cost and
//!    software-check cost.
//! 4. **TSan shadow cells** (paper §5): with the default bounded cells,
//!    reader eviction loses races; the paper configures "enough cells to
//!    be sound" — our `ShadowMode::Exact`.
//! 5. **Static race-freedom pruning** (DESIGN.md §6): classify every
//!    static site with the sound `sa` analyses before instrumenting, and
//!    measure how much overhead each pruning depth buys without changing
//!    the race set.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin ablation [workers] [seed]
//! ```

use txrace::{recall, Detector, Knobs, Scheme, SiteClassTable, StaticPruneMode, TxRaceOpts};
use txrace_bench::{fmt_x, geomean, map_cells, pool_width, run_scheme, Table};
use txrace_hb::ShadowMode;
use txrace_htm::HtmConfig;
use txrace_workloads::{all_workloads, by_name};

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    fast_sync_ablation(workers, seed);
    ideal_htm_ablation(workers, seed);
    k_threshold_ablation(workers, seed);
    shadow_cells_ablation(workers, seed);
    static_prune_ablation(workers, seed);
}

fn fast_sync_ablation(workers: usize, seed: u64) {
    println!("== ablation 1: fast-path happens-before tracking (§5, Fig. 6) ==\n");
    let mut t = Table::new(&[
        "application",
        "tracked: races",
        "untracked: races",
        "false positives",
    ]);
    let names = ["fluidanimate", "ferret", "apache", "streamcluster"];
    let rows = map_cells(pool_width(), &names, |_, &name| {
        let w = by_name(name, workers).expect("known app");
        let truth = run_scheme(&w, Scheme::Tsan, seed);
        let on = run_scheme(&w, Scheme::txrace(), seed);
        let off_opts = TxRaceOpts {
            track_fast_sync: false,
            ..TxRaceOpts::default()
        };
        let off = run_scheme(&w, Scheme::TxRace(off_opts), seed);
        let fp_on = on
            .races
            .pairs()
            .filter(|p| !truth.races.contains(p.a, p.b))
            .count();
        let fp_off = off
            .races
            .pairs()
            .filter(|p| !truth.races.contains(p.a, p.b))
            .count();
        vec![
            name.to_string(),
            format!("{} ({fp_on} fp)", on.races.distinct_count()),
            format!("{}", off.races.distinct_count()),
            format!("{fp_off}"),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!("without fast-path tracking the detector is no longer complete.\n");
}

fn ideal_htm_ablation(workers: usize, seed: u64) {
    println!("== ablation 2: ideal HTM (no capacity / no unknown aborts, §8.2) ==\n");
    let ideal = HtmConfig {
        write_sets: 1 << 16,
        write_ways: 1 << 16,
        read_set_max_lines: usize::MAX / 2,
        max_concurrent_txns: 64,
        ..HtmConfig::default()
    };
    let mut t = Table::new(&["application", "best-effort HTM", "ideal HTM"]);
    let (mut real, mut idl) = (Vec::new(), Vec::new());
    let apps = all_workloads(workers);
    let outs = map_cells(pool_width(), &apps, |_, w| {
        let out = run_scheme(w, Scheme::txrace(), seed);
        // Ideal hardware: unlimited capacity and an interrupt-free OS.
        let mut cfg = w.config(Scheme::txrace(), seed).with_htm(ideal);
        cfg.interrupts = txrace_sim::InterruptModel::NONE;
        let out_ideal = Detector::new(cfg).run(&w.program);
        (out, out_ideal)
    });
    for (w, (out, out_ideal)) in apps.iter().zip(outs) {
        t.row(vec![
            w.name.to_string(),
            fmt_x(out.overhead),
            fmt_x(out_ideal.overhead),
        ]);
        real.push(out.overhead);
        idl.push(out_ideal.overhead);
    }
    println!("{}", t.render());
    println!(
        "geo.mean: best-effort {} -> ideal {} (the paper: \"overhead would be\n\
         improved significantly\" with conflict-only aborts)\n",
        fmt_x(geomean(&real)),
        fmt_x(geomean(&idl))
    );
}

fn k_threshold_ablation(workers: usize, seed: u64) {
    println!("== ablation 3: small-region threshold K (§4.3; paper uses K = 5) ==\n");
    let mut t = Table::new(&["K", "facesim", "apache", "ferret"]);
    let ks = [0u64, 2, 5, 10, 20];
    let names = ["facesim", "apache", "ferret"];
    let grid: Vec<(u64, &'static str)> = ks
        .iter()
        .flat_map(|&k| names.iter().map(move |&name| (k, name)))
        .collect();
    let outs = map_cells(pool_width(), &grid, |_, &(k, name)| {
        let w = by_name(name, workers).expect("known app");
        let cfg = w
            .config(Scheme::txrace(), seed)
            .with_knobs(Knobs::default().with_k(k));
        let out = Detector::new(cfg).run(&w.program);
        assert!(out.completed(), "{name}: K={k} run did not complete");
        out
    });
    for (k, row) in ks.iter().zip(outs.chunks(names.len())) {
        let mut cells = vec![format!("{k}")];
        cells.extend(row.iter().map(|out| fmt_x(out.overhead)));
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "small K turns tiny regions into transactions (management cost);\n\
              large K software-checks bigger regions (check cost).\n"
    );
}

fn shadow_cells_ablation(_workers: usize, seed: u64) {
    println!("== ablation 4: TSan shadow cells (§5) ==\n");
    // Eviction only matters when a variable has more concurrent readers
    // than cells: eight readers share one variable, then a writer races
    // with all of them (eight distinct racy pairs).
    let readers = 8usize;
    let mut b = txrace_sim::ProgramBuilder::new(readers + 1);
    let x = b.var("x");
    for t in 0..readers {
        let pad = b.array(&format!("pad{t}"), 8);
        // Each reader touches x exactly once, early, then does private
        // work — after eviction it never re-registers, so a bounded
        // shadow can forget it before the racy write arrives.
        b.thread(t).read(x);
        b.thread(t).loop_n(20, |tb| {
            for i in 0..4 {
                tb.read(txrace_sim::elem(pad, i));
            }
            tb.compute(5);
        });
    }
    b.thread(readers).compute(2000).write(x, 1).compute(5);
    let p = b.build();

    let mut truth_cfg = txrace::RunConfig::new(Scheme::Tsan, seed);
    truth_cfg.shadow = ShadowMode::Exact;
    let truth = Detector::new(truth_cfg).run(&p);
    let mut t = Table::new(&["shadow mode", "races", "recall vs sound"]);
    let modes = [
        (
            "cells=1",
            ShadowMode::Cells {
                per_granule: 1,
                seed,
            },
        ),
        (
            "cells=2",
            ShadowMode::Cells {
                per_granule: 2,
                seed,
            },
        ),
        (
            "cells=4 (TSan default)",
            ShadowMode::Cells {
                per_granule: 4,
                seed,
            },
        ),
        ("exact (paper config)", ShadowMode::Exact),
    ];
    let outs = map_cells(pool_width(), &modes, |_, (_, mode)| {
        let mut cfg = txrace::RunConfig::new(Scheme::Tsan, seed);
        cfg.shadow = *mode;
        Detector::new(cfg).run(&p)
    });
    for ((name, _), out) in modes.iter().zip(outs) {
        t.row(vec![
            name.to_string(),
            out.races.distinct_count().to_string(),
            format!("{:.2}", recall(&out.races, &truth.races)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "bounded cells evict readers and miss races, which is why the\n\
              paper configures enough shadow cells to be sound.\n"
    );
}

fn static_prune_ablation(workers: usize, seed: u64) {
    println!("== ablation 5: static race-freedom pruning (DESIGN.md §6) ==\n");
    let mut t = Table::new(&[
        "application",
        "pruned sites",
        "dyn pruned",
        "off",
        "checks-only",
        "full",
        "full-flow",
        "races (off/full/flow)",
    ]);
    let mut off_ovh = Vec::new();
    let mut checks_ovh = Vec::new();
    let mut full_ovh = Vec::new();
    let mut flow_ovh = Vec::new();
    let apps = all_workloads(workers);
    let results = map_cells(pool_width(), &apps, |_, w| {
        let stats = SiteClassTable::analyze(&w.program).stats(&w.program);
        let flow_stats = SiteClassTable::analyze_flow(&w.program).stats(&w.program);
        let mut runs = [
            StaticPruneMode::Off,
            StaticPruneMode::ChecksOnly,
            StaticPruneMode::Full,
            StaticPruneMode::FullFlow,
        ]
        .into_iter()
        .map(|mode| {
            let cfg = w.config(Scheme::txrace(), seed).with_prune(mode);
            let out = Detector::new(cfg).run(&w.program);
            assert!(out.completed(), "{}: {mode:?} run did not complete", w.name);
            out
        });
        (
            (stats, flow_stats),
            runs.next().unwrap(),
            runs.next().unwrap(),
            runs.next().unwrap(),
            runs.next().unwrap(),
        )
    });
    for (w, ((stats, flow_stats), off, checks, full, flow)) in apps.iter().zip(results) {
        // ChecksOnly is schedule-preserving, so its race set must match
        // exactly; checking it here keeps the ablation honest.
        let same: Vec<_> = off.races.pairs().collect();
        assert!(
            checks.races.pairs().eq(same.iter().copied()),
            "{}: checks-only pruning changed the race set",
            w.name
        );
        t.row(vec![
            w.name.to_string(),
            format!(
                "{}/{} ({:.0}%), flow {}/{}",
                stats.race_free,
                stats.data_sites,
                stats.static_pruned_fraction() * 100.0,
                flow_stats.race_free,
                flow_stats.data_sites,
            ),
            format!(
                "{:.1}%/{:.1}%",
                stats.pruned_fraction() * 100.0,
                flow_stats.pruned_fraction() * 100.0
            ),
            fmt_x(off.overhead),
            fmt_x(checks.overhead),
            fmt_x(full.overhead),
            fmt_x(flow.overhead),
            format!(
                "{}/{}/{}",
                off.races.distinct_count(),
                full.races.distinct_count(),
                flow.races.distinct_count()
            ),
        ]);
        off_ovh.push(off.overhead);
        checks_ovh.push(checks.overhead);
        full_ovh.push(full.overhead);
        flow_ovh.push(flow.overhead);
    }
    println!("{}", t.render());
    println!(
        "geo.mean: off {} -> checks-only {} -> full {} -> full-flow {}\n\
         checks-only skips FastTrack checks at provably race-free sites;\n\
         full also strips the transaction markers around fully-pruned regions;\n\
         full-flow adds must-lockset + MHP dataflow, redundant-check\n\
         elimination, and benign-atomic footprint pruning.",
        fmt_x(geomean(&off_ovh)),
        fmt_x(geomean(&checks_ovh)),
        fmt_x(geomean(&full_ovh)),
        fmt_x(geomean(&flow_ovh)),
    );
}
