//! Regenerates the paper's **Figure 13**: bodytrack recall as a function
//! of the TSan sampling rate (against 100% sampling as the oracle), with
//! TxRace's recall marked. The paper measures TxRace at recall 0.75 —
//! equivalent to sampling ~47.2% of memory operations — while its
//! overhead equals only ~25.5% sampling (Figure 12): the cost-
//! effectiveness argument in one pair of plots.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin fig13 [workers] [seeds]
//! ```
//!
//! Recall at each rate is averaged over several seeds (sampling is
//! probabilistic).

use txrace::{recall, Scheme};
use txrace_bench::{run_scheme, Table};
use txrace_workloads::by_name;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let nseeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("TxRace reproduction — Figure 13: bodytrack recall vs sampling rate (workers={workers}, {nseeds} seeds)\n");
    let w = by_name("bodytrack", workers).expect("bodytrack exists");

    let mut t = Table::new(&["sampling rate", "recall"]);
    for pct in (0..=100).step_by(10) {
        let mut acc = 0.0;
        for seed in 0..nseeds {
            let truth = run_scheme(&w, Scheme::Tsan, seed);
            let out = run_scheme(
                &w,
                Scheme::TsanSampling {
                    rate: pct as f64 / 100.0,
                },
                seed,
            );
            acc += recall(&out.races, &truth.races);
        }
        t.row(vec![
            format!("{pct}%"),
            format!("{:.2}", acc / nseeds as f64),
        ]);
    }
    println!("{}", t.render());

    let mut acc = 0.0;
    for seed in 0..nseeds {
        let truth = run_scheme(&w, Scheme::Tsan, seed);
        let tx = run_scheme(&w, Scheme::txrace(), seed);
        acc += recall(&tx.races, &truth.races);
    }
    println!(
        "TxRace recall: {:.2} (paper: 0.75, equivalent to ~47.2% sampling)",
        acc / nseeds as f64
    );
}
