//! Regenerates the paper's **Figure 13**: bodytrack recall as a function
//! of the TSan sampling rate (against 100% sampling as the oracle), with
//! TxRace's recall marked. The paper measures TxRace at recall 0.75 —
//! equivalent to sampling ~47.2% of memory operations — while its
//! overhead equals only ~25.5% sampling (Figure 12): the cost-
//! effectiveness argument in one pair of plots.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin fig13 [workers] [seeds]
//! ```
//!
//! Recall at each rate is averaged over several seeds (sampling is
//! probabilistic).

use txrace::{recall, Scheme};
use txrace_bench::{map_cells, pool_width, record_workload, replay_scheme, run_scheme, Table};
use txrace_workloads::by_name;

fn main() {
    let mut args = txrace_bench::args_after_cache_flag().into_iter();
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let nseeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("TxRace reproduction — Figure 13: bodytrack recall vs sampling rate (workers={workers}, {nseeds} seeds)\n");
    let w = by_name("bodytrack", workers).expect("bodytrack exists");

    // Phase 1: record the program ONCE per seed. Every sampling rate and
    // the TSan truth below replay these traces instead of re-executing.
    let seeds: Vec<u64> = (0..nseeds).collect();
    let logs = map_cells(pool_width(), &seeds, |_, &seed| record_workload(&w, seed));
    let truths: Vec<_> = seeds
        .iter()
        .zip(&logs)
        .map(|(&seed, log)| replay_scheme(&w, log, Scheme::Tsan, seed))
        .collect();

    // Phase 2: every (rate, seed) cell plus the (TxRace, seed) cells, all
    // independent; recall is computed against the phase-1 truths.
    let pcts: Vec<u64> = (0..=100).step_by(10).collect();
    let mut grid: Vec<(Scheme, usize)> = pcts
        .iter()
        .flat_map(|&pct| {
            seeds.iter().enumerate().map(move |(si, _)| {
                (
                    Scheme::TsanSampling {
                        rate: pct as f64 / 100.0,
                    },
                    si,
                )
            })
        })
        .collect();
    grid.extend(
        seeds
            .iter()
            .enumerate()
            .map(|(si, _)| (Scheme::txrace(), si)),
    );
    let recalls = map_cells(pool_width(), &grid, |_, (scheme, si)| {
        let out = match scheme {
            Scheme::TxRace(_) => run_scheme(&w, scheme.clone(), seeds[*si]),
            _ => replay_scheme(&w, &logs[*si], scheme.clone(), seeds[*si]),
        };
        recall(&out.races, &truths[*si].races)
    });

    let mut t = Table::new(&["sampling rate", "recall"]);
    for (pct, per_seed) in pcts.iter().zip(recalls.chunks(seeds.len())) {
        let acc: f64 = per_seed.iter().sum();
        t.row(vec![
            format!("{pct}%"),
            format!("{:.2}", acc / nseeds as f64),
        ]);
    }
    println!("{}", t.render());

    let acc: f64 = recalls[pcts.len() * seeds.len()..].iter().sum();
    println!(
        "TxRace recall: {:.2} (paper: 0.75, equivalent to ~47.2% sampling)",
        acc / nseeds as f64
    );
}
