//! Regenerates the paper's **Figure 13**: bodytrack recall as a function
//! of the TSan sampling rate (against 100% sampling as the oracle), with
//! TxRace's recall marked. The paper measures TxRace at recall 0.75 —
//! equivalent to sampling ~47.2% of memory operations — while its
//! overhead equals only ~25.5% sampling (Figure 12): the cost-
//! effectiveness argument in one pair of plots.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin fig13 [workers] [seeds]
//! ```
//!
//! Recall at each rate is averaged over several seeds (sampling is
//! probabilistic).

use txrace::{recall, Scheme};
use txrace_bench::{
    map_cells, pool_width, record_workload, replay_schemes_fanout, run_scheme, Table,
};
use txrace_workloads::by_name;

fn main() {
    let mut args = txrace_bench::args_after_cache_flag().into_iter();
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let nseeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("TxRace reproduction — Figure 13: bodytrack recall vs sampling rate (workers={workers}, {nseeds} seeds)\n");
    let w = by_name("bodytrack", workers).expect("bodytrack exists");

    // Phase 1: record the program ONCE per seed. Every sampling rate and
    // the TSan truth below replay these traces instead of re-executing.
    let seeds: Vec<u64> = (0..nseeds).collect();
    let logs = map_cells(pool_width(), &seeds, |_, &seed| record_workload(&w, seed));

    // Phase 2: one fan-out pass per seed carries the TSan truth plus all
    // eleven sampling rates over that seed's shared trace — twelve
    // consumers, one concurrent log walk. Recall is computed against the
    // truth consumer of the same pass.
    let pcts: Vec<u64> = (0..=100).step_by(10).collect();
    let mut schemes = vec![Scheme::Tsan];
    schemes.extend(pcts.iter().map(|&pct| Scheme::TsanSampling {
        rate: pct as f64 / 100.0,
    }));
    // per_seed[si] = (truth races, recall of each rate) under seed `si`.
    let per_seed: Vec<(txrace_hb::RaceSet, Vec<f64>)> = seeds
        .iter()
        .zip(&logs)
        .map(|(&seed, log)| {
            let outs = replay_schemes_fanout(&w, log, &schemes, seed, pool_width());
            let truth = outs[0].outcome.races.clone();
            let recalls = outs[1..]
                .iter()
                .map(|f| recall(&f.outcome.races, &truth))
                .collect();
            (truth, recalls)
        })
        .collect();
    // TxRace steers execution, so its per-seed cells still run live.
    let tx_recalls = map_cells(pool_width(), &seeds, |si, &seed| {
        let out = run_scheme(&w, Scheme::txrace(), seed);
        recall(&out.races, &per_seed[si].0)
    });

    let mut t = Table::new(&["sampling rate", "recall"]);
    for (ri, pct) in pcts.iter().enumerate() {
        let acc: f64 = per_seed.iter().map(|(_, recalls)| recalls[ri]).sum();
        t.row(vec![
            format!("{pct}%"),
            format!("{:.2}", acc / nseeds as f64),
        ]);
    }
    println!("{}", t.render());

    let acc: f64 = tx_recalls.iter().sum();
    println!(
        "TxRace recall: {:.2} (paper: 0.75, equivalent to ~47.2% sampling)",
        acc / nseeds as f64
    );
}
