//! Regenerates the paper's **Figure 11**: cost-effectiveness of TxRace vs
//! TSan with sampling at 10%, 50%, and 100%, across the nine applications
//! where at least one race is detected. Cost-effectiveness is
//! `recall / normalized-overhead` with TSan@100% as the 1.0 reference.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin fig11 [workers] [seed]
//! ```

use txrace::{recall, Scheme};
use txrace_bench::{
    map_cells, pool_width, record_workload, replay_schemes_fanout, run_scheme, Table,
};
use txrace_workloads::all_workloads;

const RACY_APPS: &[&str] = &[
    "fluidanimate",
    "vips",
    "raytrace",
    "ferret",
    "x264",
    "bodytrack",
    "facesim",
    "streamcluster",
    "canneal",
];

fn main() {
    let mut args = txrace_bench::args_after_cache_flag().into_iter();
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("TxRace reproduction — Figure 11: cost-effectiveness vs sampling (workers={workers}, seed={seed})\n");
    let mut t = Table::new(&["application", "TSan+10%", "TSan+50%", "TSan+100%", "TxRace"]);
    // One pool cell per racy app. Each cell records its app ONCE, then
    // fans the truth run and both sampling rates over that single trace
    // in one parallel pass — execution happens a single time per app and
    // the log is walked concurrently, not once per scheme; only TxRace
    // (an active engine that steers execution) still runs live.
    let mut apps = all_workloads(workers);
    apps.retain(|w| RACY_APPS.contains(&w.name));
    let rows = map_cells(pool_width(), &apps, |_, w| {
        let log = record_workload(w, seed);
        let schemes = [
            Scheme::Tsan,
            Scheme::TsanSampling { rate: 0.1 },
            Scheme::TsanSampling { rate: 0.5 },
        ];
        let outs = replay_schemes_fanout(w, &log, &schemes, seed, schemes.len());
        let truth = &outs[0].outcome;
        let base_extra = (truth.overhead - 1.0).max(1e-9);
        let ce = |overhead: f64, rec: f64| -> f64 {
            let norm = ((overhead - 1.0).max(0.0) / base_extra).max(1e-3);
            rec / norm
        };
        let mut cells = vec![w.name.to_string()];
        for f in &outs[1..] {
            let r = recall(&f.outcome.races, &truth.races);
            cells.push(format!("{:.2}", ce(f.outcome.overhead, r)));
        }
        cells.push("1.00".to_string()); // TSan@100% is its own reference
        let tx = run_scheme(w, Scheme::txrace(), seed);
        let r = recall(&tx.races, &truth.races);
        cells.push(format!("{:.2}", ce(tx.overhead, r)));
        cells
    });
    for cells in rows {
        t.row(cells);
    }
    println!("{}", t.render());
    println!("paper: TxRace beats sampling on every app except x264; low-rate");
    println!("sampling looks good only where races manifest dynamically often.");
}
