//! Measures the *live* TxRace cells of the Table 1 grid — the runs an
//! event log cannot replace because the engine actively aborts, rolls
//! back, and redirects execution — under each speculative-state
//! versioning policy, and emits `BENCH_live.json`.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin bench_live [workers] [seed] > BENCH_live.json
//! ```
//!
//! One row per app: wall-clock (best of three, serial) for the default
//! undo-journal policy, the write-buffer oracle, and the old full-memory
//! clone-snapshot baseline, plus the undo-vs-clone speedup. Detection
//! outputs are asserted bit-identical across all three policies before
//! any timing is reported — the policies may only differ in simulator
//! wall-clock, never in results.

use std::time::Instant;

use txrace::{Detector, RunOutcome, Scheme};
use txrace_bench::{geomean, json_rows, JsonValue};
use txrace_htm::{HtmConfig, VersionPolicy};
use txrace_workloads::{all_workloads, Workload};

/// Timed repetitions per (app, policy) cell; the minimum is reported.
const REPS: u32 = 3;

fn run_policy(w: &Workload, seed: u64, version: VersionPolicy) -> RunOutcome {
    let mut cfg = w.config(Scheme::txrace(), seed);
    cfg.htm = HtmConfig { version, ..cfg.htm };
    let out = Detector::new(cfg).run(&w.program);
    assert!(
        out.completed(),
        "{}: {version:?} run did not complete",
        w.name
    );
    out
}

/// Times one (app, policy) cell serially and returns (min wall ns, last
/// outcome).
fn time_policy(w: &Workload, seed: u64, version: VersionPolicy) -> (u64, RunOutcome) {
    let mut wall_ns = u64::MAX;
    let mut last = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = run_policy(w, seed, version);
        wall_ns = wall_ns.min(t0.elapsed().as_nanos() as u64);
        last = Some(out);
    }
    (wall_ns, last.expect("at least one repetition ran"))
}

/// All policies must agree on everything observable; only wall-clock may
/// differ.
fn assert_identical_outputs(
    app: &str,
    policy: VersionPolicy,
    oracle: &RunOutcome,
    out: &RunOutcome,
) {
    let tag = format!("{app} [{policy:?} vs Undo]");
    assert_eq!(
        oracle.races.reports(),
        out.races.reports(),
        "{tag}: race sets differ"
    );
    assert_eq!(oracle.breakdown, out.breakdown, "{tag}: cycles differ");
    assert_eq!(oracle.htm, out.htm, "{tag}: abort mixes differ");
    assert_eq!(oracle.engine, out.engine, "{tag}: engine stats differ");
    assert_eq!(oracle.memory, out.memory, "{tag}: final memory differs");
    assert_eq!(oracle.run, out.run, "{tag}: run results differ");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let mut rows = Vec::new();
    let mut speedups_clone = Vec::new();
    let mut speedups_buffer = Vec::new();
    let total_start = Instant::now();
    for w in all_workloads(workers) {
        let (undo_ns, undo) = time_policy(&w, seed, VersionPolicy::Undo);
        let (buffer_ns, buffer) = time_policy(&w, seed, VersionPolicy::Buffer);
        let (clone_ns, clone) = time_policy(&w, seed, VersionPolicy::CloneSnapshot);
        assert_identical_outputs(w.name, VersionPolicy::Buffer, &undo, &buffer);
        assert_identical_outputs(w.name, VersionPolicy::CloneSnapshot, &undo, &clone);

        let vs_clone = clone_ns as f64 / undo_ns.max(1) as f64;
        let vs_buffer = buffer_ns as f64 / undo_ns.max(1) as f64;
        speedups_clone.push(vs_clone);
        speedups_buffer.push(vs_buffer);
        rows.push(vec![
            ("app", JsonValue::Str(w.name.to_string())),
            ("txrace_cycles", JsonValue::Int(undo.breakdown.total())),
            (
                "txrace_races",
                JsonValue::Int(undo.races.distinct_count() as u64),
            ),
            ("undo_wall_ns", JsonValue::Int(undo_ns)),
            ("buffer_wall_ns", JsonValue::Int(buffer_ns)),
            ("clone_wall_ns", JsonValue::Int(clone_ns)),
            ("speedup_vs_clone", JsonValue::Num(round3(vs_clone))),
            ("speedup_vs_buffer", JsonValue::Num(round3(vs_buffer))),
        ]);
    }
    rows.push(vec![
        ("app", JsonValue::Str("(total)".to_string())),
        ("workers", JsonValue::Int(workers as u64)),
        ("seed", JsonValue::Int(seed)),
        ("reps", JsonValue::Int(u64::from(REPS))),
        (
            "wall_ns",
            JsonValue::Int(total_start.elapsed().as_nanos() as u64),
        ),
        (
            "speedup_vs_clone",
            JsonValue::Num(round3(geomean(&speedups_clone))),
        ),
        (
            "speedup_vs_buffer",
            JsonValue::Num(round3(geomean(&speedups_buffer))),
        ),
    ]);
    println!("{}", json_rows(&rows));
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}
