//! Compares the detector families the paper's related-work section
//! discusses, on the same workloads:
//!
//! * **Eraser-style lockset** (Savage et al. '97) — cheap but incomplete:
//!   blind to non-mutex synchronization, so it raises false alarms on
//!   correctly ordered code.
//! * **FastTrack/TSan happens-before** — sound and complete but slow.
//! * **TxRace** — complete, almost as effective as HB detection, and far
//!   cheaper.
//!
//! Each workload is executed once and recorded; the lockset and TSan
//! columns are produced by replaying that single trace, so both detectors
//! judge the *same* interleaving.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin baselines [workers] [seed]
//! ```

use txrace::{CostModel, Detector, LocksetConsumer, PanelConsumer, Scheme};
use txrace_bench::{fmt_x, record_workload, run_scheme, Table};
use txrace_sim::fan_out;
use txrace_workloads::all_workloads;

fn main() {
    let mut args = txrace_bench::args_after_cache_flag().into_iter();
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("Detector family comparison (workers={workers}, seed={seed})\n");
    let mut t = Table::new(&[
        "application",
        "lockset reports (fp)",
        "lockset ovh",
        "TSan races",
        "TSan ovh",
        "TxRace races",
        "TxRace ovh",
    ]);
    for w in all_workloads(workers) {
        // Record the workload ONCE; TSan and lockset ride a single
        // heterogeneous fan-out pass over the same trace, so their
        // reports disagree only where the detection algorithms do —
        // never because of interleaving luck. TxRace steers execution
        // and still runs live.
        let log = record_workload(&w, seed);
        let d = Detector::new(w.config(Scheme::Tsan, seed));
        let panel = vec![
            PanelConsumer::Tsan(d.consumer(&w.program)),
            PanelConsumer::Lockset(LocksetConsumer::new(
                w.program.thread_count(),
                CostModel::default(),
            )),
        ];
        let mut replayed = fan_out(&log, panel, 2).into_iter();
        let tsan_consumer = replayed
            .next()
            .and_then(|r| r.consumer.into_tsan())
            .expect("fan_out preserves panel order");
        let tsan = d.outcome_of_replayed(tsan_consumer, &log);
        let ls = replayed
            .next()
            .and_then(|r| r.consumer.into_lockset())
            .expect("fan_out preserves panel order");
        let tx = run_scheme(&w, Scheme::txrace(), seed);

        let base = CostModel::default().baseline_cycles(&w.program);
        let ls_ovh = ls.breakdown().overhead_vs(base);

        // A lockset report is a false positive if the address is not one
        // TSan flags (lockset reports are per-address).
        let tsan_addrs: std::collections::BTreeSet<_> =
            tsan.races.reports().iter().map(|r| r.addr).collect();
        let fp = ls
            .reports()
            .iter()
            .filter(|r| !tsan_addrs.contains(&r.addr))
            .count();

        t.row(vec![
            w.name.to_string(),
            format!("{} ({fp})", ls.reports().len()),
            fmt_x(ls_ovh),
            tsan.races.distinct_count().to_string(),
            fmt_x(tsan.overhead),
            tx.races.distinct_count().to_string(),
            fmt_x(tx.overhead),
        ]);
    }
    println!("{}", t.render());
    println!("lockset is cheap but inexact in both directions: false positives on");
    println!("sync it cannot see, and address-level (not instruction-pair) reports.");
}
