//! Regenerates the paper's **Table 1**: per-application transaction
//! statistics, detected races, and runtime overheads for TSan vs TxRace.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin table1 [workers] [seed]
//! ```
//!
//! Counts are at the per-app scale noted in each workload (the paper's
//! runs are 10^2–10^4 larger); overheads are directly comparable. Paper
//! values are shown in parentheses.

use txrace::{Detector, RunOutcome, Scheme, SiteClassTable, StaticPruneMode};
use txrace_bench::{
    evaluate_app, fmt_x, geomean, json_rows, map_cells, paper, pool_width, AppResult, EvalOptions,
    JsonValue, Table,
};
use txrace_workloads::{all_workloads, Workload};

/// A "TxRace+SA" run: static pruning on top of the default TxRace
/// configuration (race-free regions lose their transaction markers
/// entirely; surviving slow paths skip race-free sites). `Full` uses the
/// flow-insensitive layer; `FullFlow` adds the dataflow passes.
fn run_pruned(w: &Workload, seed: u64, mode: StaticPruneMode) -> RunOutcome {
    let cfg = w.config(Scheme::txrace(), seed).with_prune(mode);
    let out = Detector::new(cfg).run(&w.program);
    assert!(out.completed(), "{}: pruned run did not complete", w.name);
    out
}

/// Everything one table row needs; computed per app, in parallel across
/// the worker pool (each cell is an independent deterministic simulation,
/// so the fan-out changes wall-clock only, never the results).
struct Cell {
    base: AppResult,
    sa: RunOutcome,
    flow: RunOutcome,
    stats: txrace::PruneStats,
    flow_stats: txrace::PruneStats,
}

fn eval_cell(w: &Workload, seed: u64) -> Cell {
    let base = evaluate_app(
        w,
        EvalOptions {
            seed,
            ..Default::default()
        },
    );
    let sa = run_pruned(w, seed, StaticPruneMode::Full);
    let flow = run_pruned(w, seed, StaticPruneMode::FullFlow);
    let stats = SiteClassTable::analyze(&w.program).stats(&w.program);
    let flow_stats = SiteClassTable::analyze_flow(&w.program).stats(&w.program);
    Cell {
        base,
        sa,
        flow,
        stats,
        flow_stats,
    }
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let json = raw.iter().any(|a| a == "--json");
    raw.retain(|a| a != "--json");
    let mut args = raw.into_iter();
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    if json {
        return print_json(workers, seed);
    }

    println!("TxRace reproduction — Table 1 (workers={workers}, seed={seed})");
    println!("paper values in parentheses; counts are scaled per the app's note\n");

    let mut t = Table::new(&[
        "application",
        "committed",
        "conflict",
        "capacity",
        "unknown",
        "TSan races",
        "TxRace races",
        "TSan ovh",
        "TxRace ovh",
        "pruned",
        "TxRace+SA ovh",
        "TxRace+SA-flow ovh",
    ]);
    let mut tsan_ovh = Vec::new();
    let mut tx_ovh = Vec::new();
    let mut sa_ovh = Vec::new();
    let mut flow_ovh = Vec::new();

    // `(paper)` column suffixes apply only to the 14 paper apps; the
    // message-passing families (pipeline/actors/worksteal) have no
    // paper row and print bare measured values.
    let vs = |got: String, p: Option<String>| match p {
        Some(p) => format!("{got} ({p})"),
        None => got,
    };
    let apps = all_workloads(workers);
    let results = map_cells(pool_width(), &apps, |_, w| eval_cell(w, seed));
    for (w, c) in apps.iter().zip(results) {
        let r = &c.base;
        let htm = r.txrace.htm.expect("txrace stats");
        let p = paper::row(w.name);
        t.row(vec![
            w.name.to_string(),
            format!("{}", htm.committed),
            vs(
                htm.conflict_aborts.to_string(),
                p.map(|p| p.conflict.to_string()),
            ),
            vs(
                htm.capacity_aborts.to_string(),
                p.map(|p| p.capacity.to_string()),
            ),
            vs(
                htm.unknown_aborts.to_string(),
                p.map(|p| p.unknown.to_string()),
            ),
            vs(
                r.tsan.races.distinct_count().to_string(),
                p.map(|p| p.tsan_races.to_string()),
            ),
            vs(
                r.txrace.races.distinct_count().to_string(),
                p.map(|p| p.txrace_races.to_string()),
            ),
            vs(fmt_x(r.tsan.overhead), p.map(|p| fmt_x(p.tsan_overhead))),
            vs(
                fmt_x(r.txrace.overhead),
                p.map(|p| fmt_x(p.txrace_overhead)),
            ),
            format!(
                "{:.0}%/{:.0}%",
                c.stats.pruned_fraction() * 100.0,
                c.flow_stats.pruned_fraction() * 100.0
            ),
            fmt_x(c.sa.overhead),
            fmt_x(c.flow.overhead),
        ]);
        // The headline geomeans compare against the paper, so they stay
        // on the paper's app set.
        if p.is_some() {
            tsan_ovh.push(r.tsan.overhead);
            tx_ovh.push(r.txrace.overhead);
            sa_ovh.push(c.sa.overhead);
            flow_ovh.push(c.flow.overhead);
        }
    }
    println!("{}", t.render());
    println!("(pruned column: dynamic-access fraction, Full/FullFlow)");
    println!("(geomeans below cover the 14 paper apps only)");
    println!(
        "geo.mean overhead: TSan {} (paper {}), TxRace {} (paper {} Prof / {} Dyn)",
        fmt_x(geomean(&tsan_ovh)),
        fmt_x(paper::GEOMEAN_TSAN_OVERHEAD),
        fmt_x(geomean(&tx_ovh)),
        fmt_x(paper::GEOMEAN_TXRACE_OVERHEAD),
        fmt_x(paper::GEOMEAN_TXRACE_DYN_OVERHEAD),
    );
    let tx = geomean(&tx_ovh);
    let sa = geomean(&sa_ovh);
    let flow = geomean(&flow_ovh);
    println!(
        "with static pruning (TxRace+SA): {} geo.mean ({:.0}% of TxRace's extra overhead elided)",
        fmt_x(sa),
        (1.0 - (sa - 1.0) / (tx - 1.0).max(1e-9)) * 100.0,
    );
    println!(
        "with flow-sensitive pruning (TxRace+SA-flow): {} geo.mean ({:.0}% elided)",
        fmt_x(flow),
        (1.0 - (flow - 1.0) / (tx - 1.0).max(1e-9)) * 100.0,
    );
}

/// Machine-readable output: `table1 --json [workers] [seed]`.
fn print_json(workers: usize, seed: u64) {
    let mut rows = Vec::new();
    let apps = all_workloads(workers);
    let results = map_cells(pool_width(), &apps, |_, w| eval_cell(w, seed));
    for (w, c) in apps.iter().zip(results) {
        let r = &c.base;
        let h = r.txrace.htm.expect("txrace stats");
        rows.push(vec![
            ("app", JsonValue::Str(w.name.to_string())),
            ("committed", JsonValue::Int(h.committed)),
            ("conflict_aborts", JsonValue::Int(h.conflict_aborts)),
            ("capacity_aborts", JsonValue::Int(h.capacity_aborts)),
            ("unknown_aborts", JsonValue::Int(h.unknown_aborts)),
            (
                "tsan_races",
                JsonValue::Int(r.tsan.races.distinct_count() as u64),
            ),
            (
                "txrace_races",
                JsonValue::Int(r.txrace.races.distinct_count() as u64),
            ),
            ("tsan_overhead", JsonValue::Num(r.tsan.overhead)),
            ("txrace_overhead", JsonValue::Num(r.txrace.overhead)),
            ("recall", JsonValue::Num(r.recall)),
            ("pruned_fraction", JsonValue::Num(c.stats.pruned_fraction())),
            (
                "pruned_fraction_flow",
                JsonValue::Num(c.flow_stats.pruned_fraction()),
            ),
            (
                "txrace_sa_races",
                JsonValue::Int(c.sa.races.distinct_count() as u64),
            ),
            ("txrace_sa_overhead", JsonValue::Num(c.sa.overhead)),
            (
                "txrace_saflow_races",
                JsonValue::Int(c.flow.races.distinct_count() as u64),
            ),
            ("txrace_saflow_overhead", JsonValue::Num(c.flow.overhead)),
        ]);
    }
    println!("{}", json_rows(&rows));
}
