//! A small command-line front end for running detectors over the bundled
//! workloads.
//!
//! ```text
//! txrace-cli list
//! txrace-cli run <app> [--scheme tsan|txrace|lockset|sampling=<rate>]
//!                      [--seed <n>] [--workers <n>]
//!                      [--loopcut noopt|dyn|prof] [--verbose]
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p txrace-bench --bin txrace-cli -- run vips --seed 3
//! cargo run --release -p txrace-bench --bin txrace-cli -- run bodytrack --scheme tsan
//! ```

use txrace::{CostModel, Detector, LocksetConsumer, LoopcutMode, Scheme, TxRaceOpts};
use txrace_workloads::{all_workloads, by_name};

fn usage() -> ! {
    eprintln!(
        "usage:\n  txrace-cli list\n  txrace-cli run <app> [--scheme tsan|txrace|lockset|sampling=<rate>] \
         [--seed <n>] [--workers <n>] [--loopcut noopt|dyn|prof] [--verbose]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = txrace_bench::args_after_cache_flag();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available workloads (paper Table 1 order):");
            for w in all_workloads(2) {
                println!(
                    "  {:<14} {} planted race(s); scale: {}",
                    w.name,
                    w.planted.len(),
                    w.scale
                );
            }
        }
        Some("run") => run_command(&args[1..]),
        _ => usage(),
    }
}

fn run_command(args: &[String]) {
    let Some(app) = args.first() else { usage() };
    let mut scheme = "txrace".to_string();
    let mut seed = 42u64;
    let mut workers = 4usize;
    let mut loopcut = LoopcutMode::Dyn;
    let mut verbose = false;

    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let val = |it: &mut std::slice::Iter<String>| it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--scheme" => scheme = val(&mut it),
            "--seed" => seed = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--loopcut" => {
                loopcut = match val(&mut it).as_str() {
                    "noopt" => LoopcutMode::NoOpt,
                    "dyn" => LoopcutMode::Dyn,
                    "prof" => LoopcutMode::Prof,
                    _ => usage(),
                }
            }
            "--verbose" => verbose = true,
            _ => usage(),
        }
    }

    if workers < 2 {
        eprintln!("--workers must be at least 2 (the workloads need concurrency)");
        std::process::exit(2);
    }
    let Some(w) = by_name(app, workers) else {
        eprintln!("unknown app {app:?}; try `txrace-cli list`");
        std::process::exit(2);
    };

    if scheme == "lockset" {
        // Record under the workload's own scheduler, then replay the
        // trace through the lockset consumer.
        let log = txrace_bench::record_workload(&w, seed);
        let mut ls = LocksetConsumer::new(w.program.thread_count(), CostModel::default());
        log.replay(&mut ls);
        println!(
            "{app} (lockset, seed {seed}, {workers} workers): {:?}",
            log.result().status
        );
        println!("lockset violations: {}", ls.reports().len());
        if verbose {
            for rep in ls.reports() {
                println!("  {rep}");
            }
        }
        return;
    }

    let scheme = match scheme.as_str() {
        "tsan" => Scheme::Tsan,
        "txrace" => Scheme::TxRace(TxRaceOpts {
            loopcut,
            ..TxRaceOpts::default()
        }),
        s if s.starts_with("sampling=") => {
            let rate: f64 = s["sampling=".len()..].parse().unwrap_or_else(|_| usage());
            Scheme::TsanSampling { rate }
        }
        _ => usage(),
    };
    let out = Detector::new(w.config(scheme, seed)).run(&w.program);
    println!(
        "{app} (seed {seed}, {workers} workers): {:?} in {} steps",
        out.run.status, out.run.steps
    );
    println!(
        "races:    {} distinct static pair(s)",
        out.races.distinct_count()
    );
    if verbose {
        for r in out.races.reports() {
            let label = |s| w.program.label_of(s).unwrap_or("<unlabeled>");
            println!(
                "  {r}  [{} vs {}]",
                label(r.prior.site),
                label(r.current.site)
            );
        }
    }
    println!("overhead: {:.2}x vs uninstrumented", out.overhead);
    if let Some(h) = out.htm {
        println!(
            "txns:     {} committed; aborts {} conflict / {} capacity / {} unknown / {} retry",
            h.committed, h.conflict_aborts, h.capacity_aborts, h.unknown_aborts, h.retry_aborts
        );
    }
    if let Some(es) = out.engine {
        println!(
            "slowpath: {} regions ({} conflict, {} capacity, {} unknown, {} small, {} cuts)",
            es.slow_total(),
            es.slow_conflict,
            es.slow_capacity,
            es.slow_unknown,
            es.slow_small,
            es.loop_cuts
        );
    }
}
