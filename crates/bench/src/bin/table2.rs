//! Regenerates the paper's **Table 2**: cost-effectiveness of TxRace vs
//! TSan — per-app overhead normalized to TSan's, recall against TSan's
//! reports, and the cost-effectiveness ratio `recall / overhead`
//! (paper geomeans: 0.38 / 0.95 / 2.38).
//!
//! ```text
//! cargo run --release -p txrace-bench --bin table2 [workers] [seed]
//! ```

use txrace_bench::{evaluate_app, geomean, map_cells, paper, pool_width, EvalOptions, Table};
use txrace_workloads::all_workloads;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("TxRace reproduction — Table 2 (workers={workers}, seed={seed})");
    println!("paper values in parentheses\n");

    let mut t = Table::new(&["application", "overhead", "recall", "cost-effectiveness"]);
    let (mut ovs, mut recs, mut ces) = (Vec::new(), Vec::new(), Vec::new());
    // One pool cell per app; results come back in input order, so the
    // rendered table is byte-identical to a serial run.
    let apps = all_workloads(workers);
    let results = map_cells(pool_width(), &apps, |_, w| {
        evaluate_app(
            w,
            EvalOptions {
                seed,
                ..Default::default()
            },
        )
    });
    for (w, r) in apps.iter().zip(results) {
        // The message-passing families have no paper row; they print
        // bare measured values and stay out of the paper-comparison
        // geomeans.
        let p = paper::row(w.name);
        let norm = r.normalized_overhead();
        t.row(vec![
            w.name.to_string(),
            match p {
                Some(p) => format!(
                    "{:.2} ({:.2})",
                    norm,
                    p.txrace_overhead.max(1.0) / p.tsan_overhead.max(1.0)
                ),
                None => format!("{norm:.2}"),
            },
            match p {
                Some(p) => format!("{:.2} ({:.2})", r.recall, p.recall),
                None => format!("{:.2}", r.recall),
            },
            match p {
                Some(p) => format!("{:.2} ({:.2})", r.cost_effectiveness, p.cost_effectiveness),
                None => format!("{:.2}", r.cost_effectiveness),
            },
        ]);
        if p.is_some() {
            ovs.push(norm.max(1e-3));
            recs.push(r.recall.max(1e-3));
            ces.push(r.cost_effectiveness.max(1e-3));
        }
    }
    println!("{}", t.render());
    println!(
        "geo.mean: overhead {:.2} (paper 0.38), recall {:.2} (paper {:.2}), CE {:.2} (paper {:.2})",
        geomean(&ovs),
        geomean(&recs),
        paper::GEOMEAN_RECALL,
        geomean(&ces),
        paper::GEOMEAN_CE,
    );
}
