//! Regenerates the paper's **Figure 12**: bodytrack runtime overhead as a
//! function of the TSan sampling rate, normalized to 100% sampling, with
//! TxRace's overhead marked. The paper measures TxRace at 0.69 of full
//! TSan — equivalent to sampling ~25.5% of memory operations.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin fig12 [workers] [seed]
//! ```

use txrace::Scheme;
use txrace_bench::{pool_width, record_workload, replay_schemes_fanout, run_scheme, Table};
use txrace_workloads::by_name;

fn main() {
    let mut args = txrace_bench::args_after_cache_flag().into_iter();
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("TxRace reproduction — Figure 12: bodytrack overhead vs sampling rate (workers={workers}, seed={seed})\n");
    let w = by_name("bodytrack", workers).expect("bodytrack exists");

    // Record bodytrack ONCE; the whole sweep — full TSan reference plus
    // the eleven sampling rates — rides a single fan-out pass over that
    // one shared trace (every consumer on its own thread, the log walked
    // concurrently). Only TxRace re-executes (it steers the run, so it
    // cannot consume a fixed trace).
    let log = record_workload(&w, seed);
    let mut schemes = vec![Scheme::Tsan];
    schemes.extend((0..=100).step_by(10).map(|pct| Scheme::TsanSampling {
        rate: pct as f64 / 100.0,
    }));
    let outs = replay_schemes_fanout(&w, &log, &schemes, seed, pool_width());
    let full = &outs[0].outcome;
    let full_extra = (full.overhead - 1.0).max(1e-9);

    let mut t = Table::new(&["sampling rate", "normalized overhead"]);
    for (pct, f) in (0..=100).step_by(10).zip(&outs[1..]) {
        let norm = (f.outcome.overhead - 1.0).max(0.0) / full_extra;
        t.row(vec![format!("{pct}%"), format!("{norm:.2}")]);
    }
    println!("{}", t.render());

    let tx = run_scheme(&w, Scheme::txrace(), seed);
    let tx_norm = (tx.overhead - 1.0).max(0.0) / full_extra;
    println!(
        "TxRace: {:.2} of full TSan (paper: 0.69, equivalent to ~25.5% sampling)",
        tx_norm
    );
}
