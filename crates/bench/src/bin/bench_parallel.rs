//! Measures the parallel replay detection engine: one recorded trace per
//! app, a multi-detector sweep and a heterogeneous detector panel fanned
//! across cores ([`txrace_sim::fan_out`]), and address-sharded FastTrack
//! ([`txrace_hb::ShardedFastTrack`]) at several worker counts — all
//! gated on byte-identical results versus serial replay. Emits
//! `BENCH_parallel.json` with per-consumer and per-shard wall-time and
//! event-count breakdowns.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin bench_parallel \
//!     [workers] [seed] > BENCH_parallel.json
//! ```
//!
//! The headline `sweep` rows compare two ways of evaluating the paper's
//! Figure 12-style sampling-rate sweep (12 detector configurations) over
//! one recorded trace *artifact* (the serialized `.txlog` bytes the
//! record/replay pipeline stores on disk):
//!
//! - **serial single-consumer replay**: one detector invocation per
//!   configuration, each decoding the artifact and walking the event
//!   stream alone — N decodes, N walks, exactly what N separate
//!   replay-tool runs over the trace cost;
//! - **parallel**: decode once, then [`txrace_sim::fan_out`] drives all
//!   N consumers over the shared log (single-pass broadcast per group).
//!
//! The sharded rows measure the indexed design: the trace's sync
//! side-stream ([`txrace_sim::SyncIndex`]) is derived once per app and
//! shared by every shard count; each [`txrace_hb::ShardPlan`] then only
//! re-partitions the accesses. Plan construction is reported separately
//! (`plan_ns`) from the detect phase (`wall_ns`), mirroring how a
//! deployment would amortize one partition across many detector runs.
//!
//! Row kinds (`"row"` field): `sweep` (per-app headline), `fanout`
//! (per-app panel summary, in-memory log on both sides), `consumer`
//! (one panel member's timing), `sharded` (one worker count), `shard`
//! (one shard's slice/checks/wall share, at every worker count),
//! `total`.
//!
//! Fingerprints are FNV-1a over the ordered report lists, so two runs of
//! this binary at *different* worker counts must emit identical
//! `fingerprint` fields — that is the CI byte-identity check.

use std::time::Instant;

use txrace::{CostModel, Detector, LocksetConsumer, PanelConsumer, Scheme};
use txrace_bench::{geomean, json_rows, pool_width, record_workload, JsonValue};
use txrace_hb::{
    FastTrack, ShadowMode, ShardPlan, ShardedFastTrack, ShardedLockset, VectorClockDetector,
};
use txrace_sim::{fan_out, EventLog, SyncIndex};
use txrace_workloads::{all_workloads, Workload};

/// Timed repetitions per measurement; the minimum is reported.
const REPS: u32 = 3;

/// Shard counts swept for the sharded detectors.
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

const RACY_APPS: &[&str] = &[
    "fluidanimate",
    "vips",
    "raytrace",
    "ferret",
    "x264",
    "bodytrack",
    "facesim",
    "streamcluster",
    "canneal",
];

/// The multi-detector panel: three TSan variants, raw FastTrack, the
/// vector-clock reference, and the Eraser lockset baseline.
fn panel_names() -> Vec<&'static str> {
    vec![
        "tsan",
        "tsan@0.1",
        "tsan@0.5",
        "fasttrack",
        "vcref",
        "lockset",
    ]
}

/// The Figure 12-style multi-detector sweep: full TSan plus sampling
/// TSan at rates 0.0, 0.1, ..., 1.0 — twelve detector configurations,
/// the same family the fig12/fig13 binaries evaluate.
fn sweep_schemes() -> Vec<Scheme> {
    let mut schemes = vec![Scheme::Tsan];
    schemes.extend((0..=10).map(|tenths| Scheme::TsanSampling {
        rate: f64::from(tenths) / 10.0,
    }));
    schemes
}

fn sweep_consumer(w: &Workload, scheme: Scheme, seed: u64) -> PanelConsumer {
    let d = Detector::new(w.config(scheme, seed));
    PanelConsumer::Tsan(d.consumer(&w.program))
}

fn make_panel(w: &Workload, seed: u64) -> Vec<PanelConsumer> {
    let n = w.program.thread_count();
    let consumer = |scheme: Scheme| {
        let d = Detector::new(w.config(scheme, seed));
        d.consumer(&w.program)
    };
    vec![
        PanelConsumer::Tsan(consumer(Scheme::Tsan)),
        PanelConsumer::Tsan(consumer(Scheme::TsanSampling { rate: 0.1 })),
        PanelConsumer::Tsan(consumer(Scheme::TsanSampling { rate: 0.5 })),
        PanelConsumer::FastTrack(FastTrack::new(n, ShadowMode::Exact)),
        PanelConsumer::VcRef(VectorClockDetector::new(n)),
        PanelConsumer::Lockset(LocksetConsumer::new(n, CostModel::default())),
    ]
}

/// Serial reference: replay each panel member one at a time, single
/// threaded (what the figure sweeps did before fan-out existed).
fn serial_pass(w: &Workload, log: &EventLog, seed: u64) -> (Vec<PanelConsumer>, Vec<u64>, u64) {
    let mut consumers = Vec::new();
    let mut walls = Vec::new();
    let mut total = 0u64;
    for mut c in make_panel(w, seed) {
        let t0 = Instant::now();
        log.replay(&mut c);
        let ns = t0.elapsed().as_nanos() as u64;
        total += ns;
        walls.push(ns);
        consumers.push(c);
    }
    (consumers, walls, total)
}

/// FNV-1a over `bytes` (same function the consumer fingerprints use).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let mut args = txrace_bench::args_after_cache_flag().into_iter();
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let mut apps = all_workloads(4);
    apps.retain(|w| RACY_APPS.contains(&w.name));

    let mut rows = Vec::new();
    let mut sweep_speedups = Vec::new();
    let mut fanout_speedups = Vec::new();
    let mut sharded_speedups = Vec::new();
    let total_start = Instant::now();

    for w in &apps {
        let log = record_workload(w, seed);
        let events = log.len() as u64;
        let n = w.program.thread_count();

        // --- Headline: the fig12 sweep over the trace artifact. ---
        // Serial single-consumer replay is what N separate replay-tool
        // invocations over the stored `.txlog` cost: each decodes the
        // artifact and walks the event stream alone. The parallel engine
        // decodes once and broadcasts one walk to all N consumers.
        let artifact = log.to_bytes();
        let schemes = sweep_schemes();

        let mut sweep_serial_ns = u64::MAX;
        let mut sweep_serial_fps = Vec::new();
        for _ in 0..REPS {
            let mut total = 0u64;
            let mut fps = Vec::new();
            for scheme in &schemes {
                let mut c = sweep_consumer(w, scheme.clone(), seed);
                let t0 = Instant::now();
                let decoded = EventLog::from_bytes(&artifact).expect("artifact round-trips");
                decoded.replay(&mut c);
                total += t0.elapsed().as_nanos() as u64;
                fps.push(c.fingerprint());
            }
            if total < sweep_serial_ns {
                sweep_serial_ns = total;
                sweep_serial_fps = fps;
            }
        }

        let mut sweep_par_ns = u64::MAX;
        let mut sweep_par_fps = Vec::new();
        for _ in 0..REPS {
            let consumers: Vec<PanelConsumer> = schemes
                .iter()
                .map(|s| sweep_consumer(w, s.clone(), seed))
                .collect();
            let t0 = Instant::now();
            let decoded = EventLog::from_bytes(&artifact).expect("artifact round-trips");
            let reports = fan_out(&decoded, consumers, workers);
            let ns = t0.elapsed().as_nanos() as u64;
            if ns < sweep_par_ns {
                sweep_par_ns = ns;
                sweep_par_fps = reports.iter().map(|r| r.consumer.fingerprint()).collect();
            }
        }
        assert_eq!(
            sweep_par_fps, sweep_serial_fps,
            "{}: parallel sweep diverged from serial single-consumer replay",
            w.name
        );
        let sweep_speedup = sweep_serial_ns as f64 / sweep_par_ns.max(1) as f64;
        sweep_speedups.push(sweep_speedup);

        rows.push(vec![
            ("app", JsonValue::Str(w.name.to_string())),
            ("row", JsonValue::Str("sweep".to_string())),
            ("workers", JsonValue::Int(workers as u64)),
            ("detectors", JsonValue::Int(schemes.len() as u64)),
            ("events", JsonValue::Int(events)),
            ("artifact_bytes", JsonValue::Int(artifact.len() as u64)),
            ("serial_wall_ns", JsonValue::Int(sweep_serial_ns)),
            ("parallel_wall_ns", JsonValue::Int(sweep_par_ns)),
            (
                "speedup",
                JsonValue::Num((sweep_speedup * 1000.0).round() / 1000.0),
            ),
            ("identical", JsonValue::Int(1)),
        ]);

        // --- Layer 1: multi-consumer fan-out vs serial sweep. ---
        let mut serial_total = u64::MAX;
        let mut serial_walls = Vec::new();
        let mut serial_panel = Vec::new();
        for _ in 0..REPS {
            let (consumers, walls, total) = serial_pass(w, &log, seed);
            if total < serial_total {
                serial_total = total;
                serial_walls = walls;
                serial_panel = consumers;
            }
        }
        let serial_fps: Vec<u64> = serial_panel.iter().map(|c| c.fingerprint()).collect();

        let mut fanout_ns = u64::MAX;
        let mut fanout_reports = Vec::new();
        for _ in 0..REPS {
            let panel = make_panel(w, seed);
            let t0 = Instant::now();
            let reports = fan_out(&log, panel, workers);
            let ns = t0.elapsed().as_nanos() as u64;
            if ns < fanout_ns {
                fanout_ns = ns;
                fanout_reports = reports;
            }
        }
        for (r, &fp) in fanout_reports.iter().zip(&serial_fps) {
            assert_eq!(
                r.consumer.fingerprint(),
                fp,
                "{}: fan-out diverged from serial for {}",
                w.name,
                r.consumer.kind_name()
            );
        }
        let fanout_speedup = serial_total as f64 / fanout_ns.max(1) as f64;
        fanout_speedups.push(fanout_speedup);

        rows.push(vec![
            ("app", JsonValue::Str(w.name.to_string())),
            ("row", JsonValue::Str("fanout".to_string())),
            ("workers", JsonValue::Int(workers as u64)),
            ("consumers", JsonValue::Int(fanout_reports.len() as u64)),
            ("events", JsonValue::Int(events)),
            ("serial_wall_ns", JsonValue::Int(serial_total)),
            ("fanout_wall_ns", JsonValue::Int(fanout_ns)),
            (
                "speedup",
                JsonValue::Num((fanout_speedup * 1000.0).round() / 1000.0),
            ),
            ("identical", JsonValue::Int(1)),
        ]);
        for ((name, report), (serial_ns, fp)) in panel_names()
            .into_iter()
            .zip(&fanout_reports)
            .zip(serial_walls.iter().zip(&serial_fps))
        {
            rows.push(vec![
                ("app", JsonValue::Str(w.name.to_string())),
                ("row", JsonValue::Str("consumer".to_string())),
                ("name", JsonValue::Str(name.to_string())),
                ("wall_ns", JsonValue::Int(report.wall_ns)),
                ("serial_wall_ns", JsonValue::Int(*serial_ns)),
                ("events", JsonValue::Int(report.events)),
                (
                    "findings",
                    JsonValue::Int(report.consumer.finding_count() as u64),
                ),
                ("fingerprint", JsonValue::Int(*fp)),
            ]);
        }

        // --- Layer 2: address-sharded FastTrack / lockset over one
        // shared plan per shard count. ---
        let mut serial_ft_ns = u64::MAX;
        let mut serial_ft = FastTrack::new(n, ShadowMode::Exact);
        for _ in 0..REPS {
            let mut ft = FastTrack::new(n, ShadowMode::Exact);
            let t0 = Instant::now();
            log.replay(&mut ft);
            let ns = t0.elapsed().as_nanos() as u64;
            if ns < serial_ft_ns {
                serial_ft_ns = ns;
                serial_ft = ft;
            }
        }
        let serial_ft_fp = fnv1a(format!("{:?}", serial_ft.races().reports()).as_bytes());

        let mut serial_ls = txrace_hb::Lockset::new(n);
        log.replay(&mut serial_ls);

        // The sync side-stream is derived from the decoded log once per
        // app; every shard count below reuses it and only re-partitions
        // the accesses.
        let t0 = Instant::now();
        let sync = SyncIndex::of(&log);
        let sync_ns = t0.elapsed().as_nanos() as u64;

        for &wc in SHARD_COUNTS {
            let t0 = Instant::now();
            let plan = ShardPlan::with_sync(sync.clone(), &log, wc);
            let plan_ns = sync_ns + t0.elapsed().as_nanos() as u64;

            let mut best_ns = u64::MAX;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let threaded = ShardedFastTrack::new(n, wc).run_with_plan(&plan);
                let ns = t0.elapsed().as_nanos() as u64;
                best_ns = best_ns.min(ns);
                assert_eq!(
                    threaded.races.reports(),
                    serial_ft.races().reports(),
                    "{}: threaded sharded FastTrack diverged at {wc} workers",
                    w.name
                );
            }
            // Critical path: shards executed back-to-back on one core,
            // each timed alone. The slowest shard's wall is what a
            // wc-core host would wait for — free of the 1-core
            // thread-multiplexing penalty the measured wall pays.
            let mut critical_ns = u64::MAX;
            let mut best = None;
            for _ in 0..REPS {
                let out = ShardedFastTrack::new(n, wc).run_with_plan_serial(&plan);
                let max_shard = out
                    .shards
                    .iter()
                    .map(|s| s.wall_ns)
                    .max()
                    .expect("at least one shard");
                if max_shard < critical_ns {
                    critical_ns = max_shard;
                    best = Some(out);
                }
            }
            let out = best.expect("at least one rep ran");
            assert_eq!(
                out.races.reports(),
                serial_ft.races().reports(),
                "{}: sharded FastTrack diverged at {wc} workers",
                w.name
            );
            assert_eq!(out.checks, serial_ft.checks(), "{}", w.name);
            let ls_out = ShardedLockset::new(n, wc).run_with_plan(&plan);
            assert_eq!(
                ls_out.reports,
                serial_ls.reports(),
                "{}: sharded lockset diverged at {wc} workers",
                w.name
            );
            let speedup = serial_ft_ns as f64 / best_ns.max(1) as f64;
            let sharded_speedup = serial_ft_ns as f64 / critical_ns.max(1) as f64;
            if wc == 4 {
                sharded_speedups.push(sharded_speedup);
            }
            rows.push(vec![
                ("app", JsonValue::Str(w.name.to_string())),
                ("row", JsonValue::Str("sharded".to_string())),
                ("workers", JsonValue::Int(wc as u64)),
                ("wall_ns", JsonValue::Int(best_ns)),
                ("critical_path_ns", JsonValue::Int(critical_ns)),
                ("plan_ns", JsonValue::Int(plan_ns)),
                ("serial_ft_wall_ns", JsonValue::Int(serial_ft_ns)),
                (
                    "speedup",
                    JsonValue::Num((speedup * 1000.0).round() / 1000.0),
                ),
                (
                    "sharded_speedup",
                    JsonValue::Num((sharded_speedup * 1000.0).round() / 1000.0),
                ),
                ("races", JsonValue::Int(out.races.distinct_count() as u64)),
                ("fingerprint", JsonValue::Int(serial_ft_fp)),
                ("identical", JsonValue::Int(1)),
            ]);
            for s in &out.shards {
                rows.push(vec![
                    ("app", JsonValue::Str(w.name.to_string())),
                    ("row", JsonValue::Str("shard".to_string())),
                    ("workers", JsonValue::Int(wc as u64)),
                    ("shard", JsonValue::Int(s.shard as u64)),
                    ("wall_ns", JsonValue::Int(s.wall_ns)),
                    ("checks", JsonValue::Int(s.checks)),
                    ("events", JsonValue::Int(s.events)),
                    ("races_found", JsonValue::Int(s.races_found)),
                ]);
            }
        }
    }

    rows.push(vec![
        ("app", JsonValue::Str("(total)".to_string())),
        ("row", JsonValue::Str("total".to_string())),
        ("workers", JsonValue::Int(workers as u64)),
        ("seed", JsonValue::Int(seed)),
        ("pool", JsonValue::Int(pool_width() as u64)),
        (
            "wall_ns",
            JsonValue::Int(total_start.elapsed().as_nanos() as u64),
        ),
        (
            "sweep_speedup",
            JsonValue::Num((geomean(&sweep_speedups) * 1000.0).round() / 1000.0),
        ),
        (
            "fanout_speedup",
            JsonValue::Num((geomean(&fanout_speedups) * 1000.0).round() / 1000.0),
        ),
        (
            "sharded_speedup_w4",
            JsonValue::Num((geomean(&sharded_speedups) * 1000.0).round() / 1000.0),
        ),
    ]);
    println!("{}", json_rows(&rows));
}
