//! Measures the reproduction's own wall-clock on the Table 1 grid and
//! emits the machine-readable perf trajectory `BENCH_table1.json`.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin bench_table1 \
//!     [--baseline BENCH_table1.json] [workers] [seed] > BENCH_table1.json
//! ```
//!
//! One row per app: modeled cycles (deterministic), measured wall-clock
//! for the app's Table 1 cell (TSan + TxRace runs, best of three), and —
//! when `--baseline` points at a previously committed trajectory file —
//! the per-app and geomean speedup against it.
//!
//! Cells are timed **serially** on purpose: wall-clock measured while
//! sibling cells compete for cores would be noise. The table/figure
//! binaries, which only need deterministic *results*, fan out through
//! [`txrace_bench::pool`].

use std::time::Instant;

use txrace_bench::{evaluate_app, geomean, json_rows, EvalOptions, JsonValue};
use txrace_workloads::all_workloads;

/// Timed repetitions per cell; the minimum is reported.
const REPS: u32 = 3;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = raw.iter().position(|a| a == "--baseline").map(|i| {
        let path = raw.get(i + 1).cloned().expect("--baseline needs a file");
        raw.drain(i..=i + 1);
        path
    });
    let mut args = raw.into_iter();
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    let baseline = baseline_path.map(|p| {
        let text =
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"));
        parse_baseline(&text)
    });

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let total_start = Instant::now();
    for w in all_workloads(workers) {
        let opts = EvalOptions {
            seed,
            ..Default::default()
        };
        let mut wall_ns = u64::MAX;
        let mut last = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let r = evaluate_app(&w, opts);
            wall_ns = wall_ns.min(t0.elapsed().as_nanos() as u64);
            last = Some(r);
        }
        let r = last.expect("at least one repetition ran");
        let mut row = vec![
            ("app", JsonValue::Str(w.name.to_string())),
            ("baseline_cycles", JsonValue::Int(r.txrace.baseline_cycles)),
            ("txrace_cycles", JsonValue::Int(r.txrace.breakdown.total())),
            ("tsan_cycles", JsonValue::Int(r.tsan.breakdown.total())),
            (
                "txrace_races",
                JsonValue::Int(r.txrace.races.distinct_count() as u64),
            ),
            ("wall_ns", JsonValue::Int(wall_ns)),
        ];
        if let Some(base) = &baseline {
            if let Some(&prev) = base.iter().find(|(n, _)| n == w.name).map(|(_, ns)| ns) {
                let speedup = prev as f64 / wall_ns.max(1) as f64;
                row.push(("pre_refactor_wall_ns", JsonValue::Int(prev)));
                row.push((
                    "speedup",
                    JsonValue::Num((speedup * 1000.0).round() / 1000.0),
                ));
                speedups.push(speedup);
            }
        }
        rows.push(row);
    }
    let mut total = vec![
        ("app", JsonValue::Str("(total)".to_string())),
        ("workers", JsonValue::Int(workers as u64)),
        ("seed", JsonValue::Int(seed)),
        ("reps", JsonValue::Int(u64::from(REPS))),
        (
            "wall_ns",
            JsonValue::Int(total_start.elapsed().as_nanos() as u64),
        ),
    ];
    if !speedups.is_empty() {
        total.push((
            "speedup",
            JsonValue::Num((geomean(&speedups) * 1000.0).round() / 1000.0),
        ));
    }
    rows.push(total);
    println!("{}", json_rows(&rows));
}

/// Pulls `(app, wall_ns)` pairs out of a previously emitted trajectory
/// file. The format is our own `json_rows` output — one flat object per
/// line — so a full JSON parser is unnecessary.
fn parse_baseline(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(app) = extract_str(line, "\"app\": \"") else {
            continue;
        };
        let Some(ns) = extract_u64(line, "\"wall_ns\": ") else {
            continue;
        };
        out.push((app, ns));
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}
