//! Records a workload into an event trace and pretty-prints it — the
//! debugging companion of the record/replay pipeline. What this prints is
//! exactly the stream every pure-observer detector consumes, so a
//! surprising race report can be traced event by event.
//!
//! ```text
//! txdump <app> [--seed <n>] [--workers <n>] [--thread <t>]
//!              [--kind <k>[,<k>...]] [--head <n>] [--summary] [--stats]
//!              [--shards <n>] [--sites] [--epochs] [--budget <x>]
//!              [--no-trace-cache]
//! txdump --cache-clear
//! ```
//!
//! `--stats` prints per-kind event counts, the app's write density, the
//! top-N hottest addresses (N from `--head`, default 10), and the
//! on-disk trace-cache footprint instead of the event stream.
//!
//! `--shards <n>` builds the indexed shard plan (`ShardPlan`) for the
//! trace and prints the per-shard balance table: each shard's access
//! slice, its share of the routed accesses, its dispatched-event count
//! (slice + broadcast sync stream), and the max/mean imbalance — the
//! view `bench_parallel`'s `shard` rows aggregate.
//!
//! `--sites` skips recording entirely and prints the static analysis
//! view: every data site with its flow-insensitive (`Full`) and
//! flow-sensitive (`FullFlow`) classification, redundancy witnesses, and
//! the static may-race candidate pairs.
//!
//! `--epochs` runs the app live under the adaptive `ProductionMode`
//! controller (`--budget`, default 1.2) and prints the per-epoch
//! telemetry the controller steered by: the active knob values, abort
//! counts, check/elision totals, the tsan/htm cycle split, and the
//! cumulative modeled overhead at each epoch boundary.
//!
//! `--cache-clear` (no app needed) wipes `target/trace-cache` and
//! reports what was removed. The cache is also bounded automatically:
//! set `TXRACE_TRACE_CACHE_MAX_BYTES` and every recording binary evicts
//! oldest entries after each store until the cache fits.
//!
//! Kinds: `read write rmw acquire release signal wait spawn join
//! barrier-arrive barrier-release thread-done compute syscall
//! chan-send chan-recv`.
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p txrace-bench --bin txdump -- bodytrack --summary
//! cargo run --release -p txrace-bench --bin txdump -- vips --thread 1 --kind read,write --head 40
//! ```

use txrace_sim::{EventLog, TraceEvent, TraceEventKind};
use txrace_workloads::by_name;

fn usage() -> ! {
    eprintln!(
        "usage:\n  txdump <app> [--seed <n>] [--workers <n>] [--thread <t>] \
         [--kind <k>[,<k>...]] [--head <n>] [--summary] [--stats] \
         [--shards <n>] [--sites] [--epochs] [--budget <x>] \
         [--no-trace-cache]\n  \
         txdump --cache-clear"
    );
    std::process::exit(2);
}

fn parse_kind(s: &str) -> TraceEventKind {
    match s {
        "read" => TraceEventKind::Read,
        "write" => TraceEventKind::Write,
        "rmw" => TraceEventKind::Rmw,
        "acquire" => TraceEventKind::Acquire,
        "release" => TraceEventKind::Release,
        "signal" => TraceEventKind::Signal,
        "wait" => TraceEventKind::Wait,
        "spawn" => TraceEventKind::Spawn,
        "join" => TraceEventKind::Join,
        "barrier-arrive" => TraceEventKind::BarrierArrive,
        "barrier-release" => TraceEventKind::BarrierRelease,
        "thread-done" => TraceEventKind::ThreadDone,
        "compute" => TraceEventKind::Compute,
        "syscall" => TraceEventKind::Syscall,
        "chan-send" => TraceEventKind::ChanSend,
        "chan-recv" => TraceEventKind::ChanRecv,
        _ => usage(),
    }
}

fn kind_name(k: TraceEventKind) -> &'static str {
    match k {
        TraceEventKind::Read => "read",
        TraceEventKind::Write => "write",
        TraceEventKind::Rmw => "rmw",
        TraceEventKind::Acquire => "acquire",
        TraceEventKind::Release => "release",
        TraceEventKind::Signal => "signal",
        TraceEventKind::Wait => "wait",
        TraceEventKind::Spawn => "spawn",
        TraceEventKind::Join => "join",
        TraceEventKind::BarrierArrive => "barrier-arrive",
        TraceEventKind::BarrierRelease => "barrier-release",
        TraceEventKind::ThreadDone => "thread-done",
        TraceEventKind::Compute => "compute",
        TraceEventKind::Syscall => "syscall",
        TraceEventKind::ChanSend => "chan-send",
        TraceEventKind::ChanRecv => "chan-recv",
    }
}

/// `--stats`: aggregate trace statistics — per-kind event counts, write
/// density, and the `top_n` hottest addresses by access count.
fn print_stats(log: &EventLog, top_n: usize) {
    let total = log.len().max(1) as f64;
    let mut counts = std::collections::BTreeMap::new();
    // (reads, writes) per address; RMWs count as writes.
    let mut heat: std::collections::HashMap<u64, (u64, u64)> = std::collections::HashMap::new();
    for e in log.events() {
        *counts.entry(kind_name(e.kind)).or_insert(0u64) += 1;
        match e.kind {
            TraceEventKind::Read => heat.entry(e.arg).or_default().0 += 1,
            TraceEventKind::Write | TraceEventKind::Rmw => heat.entry(e.arg).or_default().1 += 1,
            _ => {}
        }
    }

    println!("\nevents by kind:");
    for (k, n) in &counts {
        println!("  {k:<16} {n:>9}  ({:5.1}%)", *n as f64 / total * 100.0);
    }

    // Per-channel traffic: each arg is a ChanId; sends and recvs must
    // balance in a completed run (the ChanTrafficImbalance lint's view).
    let mut chan: std::collections::BTreeMap<u64, (u64, u64)> = std::collections::BTreeMap::new();
    for e in log.events() {
        match e.kind {
            TraceEventKind::ChanSend => chan.entry(e.arg).or_default().0 += 1,
            TraceEventKind::ChanRecv => chan.entry(e.arg).or_default().1 += 1,
            _ => {}
        }
    }
    if !chan.is_empty() {
        println!("\nchannel traffic:");
        for (ch, (s, r)) in &chan {
            println!(
                "  ch{ch:<4} {s:>7} sends {r:>7} recvs{}",
                if s == r { "" } else { "  (IMBALANCED)" }
            );
        }
    }

    let reads: u64 = heat.values().map(|&(r, _)| r).sum();
    let writes: u64 = heat.values().map(|&(_, w)| w).sum();
    let accesses = reads + writes;
    println!("\nwrite density:");
    println!("  {reads} reads, {writes} writes (incl. rmw) over {accesses} accesses");
    println!(
        "  {:.1}% writes; {} distinct addresses, {:.1} accesses/address",
        writes as f64 / (accesses.max(1)) as f64 * 100.0,
        heat.len(),
        accesses as f64 / heat.len().max(1) as f64,
    );

    let mut hottest: Vec<(u64, (u64, u64))> = heat.into_iter().collect();
    hottest.sort_by_key(|&(addr, (r, w))| (std::cmp::Reverse(r + w), addr));
    println!("\ntop {} hottest addresses:", top_n.min(hottest.len()));
    println!(
        "  {:<18} {:>9} {:>9} {:>9}",
        "address", "reads", "writes", "total"
    );
    for (addr, (r, w)) in hottest.into_iter().take(top_n) {
        println!("  {:#016x} {r:>9} {w:>9} {:>9}", addr, r + w);
    }

    let cache = txrace_bench::cache_stats();
    println!("\ntrace cache (target/trace-cache):");
    println!(
        "  {} entries, {} bytes{}",
        cache.entries,
        cache.bytes,
        match std::env::var("TXRACE_TRACE_CACHE_MAX_BYTES") {
            Ok(cap) => format!(" (cap {cap})"),
            Err(_) => " (uncapped; set TXRACE_TRACE_CACHE_MAX_BYTES)".to_string(),
        }
    );
}

/// `--shards <n>`: the indexed-sharding view of one trace — how the
/// one-pass access partitioner balances the routed accesses across `n`
/// shards, and what each shard actually dispatches (its slice plus the
/// broadcast sync stream).
fn print_shards(log: &EventLog, shards: usize) {
    use txrace_hb::ShardPlan;

    let t0 = std::time::Instant::now();
    let plan = ShardPlan::build(log, shards);
    let plan_wall = t0.elapsed();
    let total = plan.partition().total_accesses();
    let sync = plan.sync().len() as u64;
    println!(
        "\nshard plan: {total} routed accesses + {sync} sync events \
         (of {} logged), built in {plan_wall:?}",
        log.len()
    );
    println!(
        "  {:>5} {:>10} {:>7} {:>10} {:>8}",
        "shard", "accesses", "share", "dispatch", "vs mean"
    );
    let mean = total as f64 / shards as f64;
    let mut max_slice = 0u64;
    for s in 0..shards {
        let n = plan.partition().slice(s).len() as u64;
        max_slice = max_slice.max(n);
        println!(
            "  {s:>5} {n:>10} {:>6.1}% {:>10} {:>7.2}x",
            n as f64 / total.max(1) as f64 * 100.0,
            n + sync,
            n as f64 / mean.max(1.0)
        );
    }
    println!(
        "\n  imbalance (max/mean slice): {:.2}x",
        max_slice as f64 / mean.max(1.0)
    );
    println!(
        "  critical-path dispatch vs full-log walk: {:.2}x \
         (old broadcast design: 1.00x per shard, {shards}.00x total)",
        (max_slice + sync) as f64 / log.len().max(1) as f64
    );
}

/// `--sites`: the static analysis view of one workload — per-site
/// classification under both pruning layers, plus the may-race pairs.
fn print_sites(w: &txrace_workloads::Workload) {
    use txrace::{FlowAnalysis, SiteClass, SiteClassTable};

    let p = &w.program;
    let base = SiteClassTable::analyze(p);
    let fa = FlowAnalysis::run(p);
    let class_str = |c: SiteClass| match c {
        SiteClass::PotentiallyRacy => "RACY".to_string(),
        SiteClass::RaceFree(r) => r.to_string(),
    };
    let op_str = |op: &txrace_sim::Op| match op {
        txrace_sim::Op::Read(_) => "read",
        txrace_sim::Op::Write(_, _) => "write",
        txrace_sim::Op::Rmw(_, _) => "rmw",
        txrace_sim::Op::ReadArr { .. } => "read[]",
        txrace_sim::Op::WriteArr { .. } => "write[]",
        _ => "other",
    };
    println!(
        "\nsite classification ({} data sites):",
        fa.table.stats(p).data_sites
    );
    println!(
        "  {:>6} {:>3} {:<8} {:<22} {:<14} {:<16} witness",
        "site", "thr", "op", "label", "full", "full-flow"
    );
    p.visit_static(&mut |t, site, op| {
        if !op.is_data_access() {
            return;
        }
        let label = p.label_of(site).unwrap_or("-");
        let witness = fa
            .table
            .witness_of(site)
            .map(|ws| {
                p.label_of(ws)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("site {}", ws.0))
            })
            .unwrap_or_default();
        println!(
            "  {:>6} {:>3} {:<8} {:<22} {:<14} {:<16} {}",
            site.0,
            t.0,
            op_str(op),
            label,
            class_str(base.class(site)),
            class_str(fa.table.class(site)),
            witness
        );
    });

    println!("\nmay-race candidate pairs ({}):", fa.pairs.len());
    for pr in fa.pairs.pairs() {
        let name = |s: txrace_sim::SiteId| {
            p.label_of(s)
                .map(str::to_string)
                .unwrap_or_else(|| format!("site {}", s.0))
        };
        let addr = fa.pairs.witness_addr(pr).expect("pair has a witness");
        println!("  {:<22} x {:<22} @ {:#x}", name(pr.a), name(pr.b), addr.0);
    }
}

/// `--epochs`: run the app live under `ProductionMode` and print the
/// epoch-by-epoch telemetry the adaptive controller steered by.
fn print_epochs(w: &txrace_workloads::Workload, seed: u64, budget: f64) {
    use txrace::{Detector, Scheme};

    let out = Detector::new(w.config(Scheme::production(budget), seed)).run(&w.program);
    let tm = out
        .telemetry
        .as_ref()
        .expect("production runs always carry telemetry");
    println!(
        "\nproduction run: budget {budget}x, overhead {:.2}x, {} race(s), \
         {}/{} epochs active",
        out.overhead,
        out.races.distinct_count(),
        tm.active_epochs(),
        tm.epochs.len(),
    );
    println!(
        "\n  {:>5} {:>7} {:>6} {:>5} {:>3} {:>5} {:>13} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "epoch",
        "events",
        "active",
        "samp",
        "K",
        "lcut",
        "aborts c/k/u",
        "checks",
        "elided",
        "tsan cyc",
        "htm cyc",
        "cum ovh"
    );
    for e in &tm.epochs {
        println!(
            "  {:>5} {:>7} {:>6} {:>5.2} {:>3} {:>5} {:>5}/{:<3}/{:<3} {:>9} {:>9} {:>10} {:>10} {:>7.2}x",
            e.index,
            e.events,
            if e.active { "on" } else { "off" },
            e.sampling,
            e.k_min_ops,
            e.loopcut_threshold,
            e.conflict_aborts,
            e.capacity_aborts,
            e.unknown_aborts,
            e.checks,
            e.elided_checks,
            e.tsan_cycles,
            e.htm_cycles,
            e.cum_overhead,
        );
    }
    println!(
        "\n  {} events total; controller decisions are a pure function of\n  \
         this telemetry prefix, so a rerun with the same seed and budget\n  \
         reproduces this table exactly.",
        tm.total_events()
    );
}

fn main() {
    let args: Vec<String> = txrace_bench::args_after_cache_flag();
    if args.iter().any(|a| a == "--cache-clear") {
        let removed = txrace_bench::clear_trace_cache();
        println!(
            "trace cache cleared: {} entries, {} bytes removed",
            removed.entries, removed.bytes
        );
        return;
    }
    let mut app: Option<String> = None;
    let mut seed = 42u64;
    let mut workers = 4usize;
    let mut thread: Option<u32> = None;
    let mut kinds: Option<Vec<TraceEventKind>> = None;
    let mut head: Option<usize> = None;
    let mut summary = false;
    let mut stats = false;
    let mut shards: Option<usize> = None;
    let mut sites = false;
    let mut epochs = false;
    let mut budget = 1.2f64;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = |it: &mut std::slice::Iter<String>| it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--seed" => seed = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--thread" => thread = Some(val(&mut it).parse().unwrap_or_else(|_| usage())),
            "--kind" => kinds = Some(val(&mut it).split(',').map(parse_kind).collect()),
            "--head" => head = Some(val(&mut it).parse().unwrap_or_else(|_| usage())),
            "--summary" => summary = true,
            "--stats" => stats = true,
            "--shards" => shards = Some(val(&mut it).parse().unwrap_or_else(|_| usage())),
            "--sites" => sites = true,
            "--epochs" => epochs = true,
            "--budget" => budget = val(&mut it).parse().unwrap_or_else(|_| usage()),
            // The one positional argument is the app; flags go anywhere.
            s if !s.starts_with('-') && app.is_none() => app = Some(s.to_string()),
            _ => usage(),
        }
    }
    let Some(app) = app else { usage() };
    let app = app.as_str();

    let Some(w) = by_name(app, workers) else {
        eprintln!("unknown app {app:?}; try `txrace-cli list`");
        std::process::exit(2);
    };
    if sites {
        // Pure static analysis: no recording needed.
        println!("{app} ({workers} workers): static site classification");
        print_sites(&w);
        return;
    }
    if epochs {
        // Live engine run, not a trace replay: the controller only
        // exists inside the two-phase engine.
        println!("{app} (seed {seed}, {workers} workers): adaptive controller epochs");
        print_epochs(&w, seed, budget);
        return;
    }
    let log = txrace_bench::record_workload(&w, seed);

    let census = log.census();
    println!(
        "{app} (seed {seed}, {workers} workers): {:?} in {} steps",
        log.result().status,
        log.result().steps
    );
    println!(
        "trace: {} events over {} threads ({} mem accesses, {} sync ops, {} syscalls, {} compute units)",
        log.len(),
        log.thread_count(),
        census.mem_accesses,
        census.sync_ops,
        census.syscalls,
        census.compute_units,
    );
    if stats {
        print_stats(&log, head.unwrap_or(10));
        return;
    }
    if let Some(n) = shards {
        print_shards(&log, n);
        return;
    }
    if summary {
        let mut counts = std::collections::BTreeMap::new();
        for e in log.events() {
            *counts.entry(kind_name(e.kind)).or_insert(0u64) += 1;
        }
        println!("\nevents by kind:");
        for (k, n) in counts {
            println!("  {k:<16} {n}");
        }
        return;
    }

    let keep = |e: &TraceEvent| {
        thread.is_none_or(|t| e.thread.0 == t)
            && kinds.as_ref().is_none_or(|ks| ks.contains(&e.kind))
    };
    let mut printed = 0usize;
    for (i, e) in log.events().iter().enumerate() {
        if !keep(e) {
            continue;
        }
        if head.is_some_and(|h| printed >= h) {
            println!("  ... (truncated by --head)");
            break;
        }
        printed += 1;
        let label = w
            .program
            .label_of(e.site)
            .map(|l| format!(" [{l}]"))
            .unwrap_or_default();
        match e.kind {
            TraceEventKind::BarrierRelease => {
                let (b, arrivals) = log.release_arrivals(e.arg);
                println!(
                    "  {i:>7}  {:<16} barrier {} releasing {} thread(s)",
                    "barrier-release",
                    b.0,
                    arrivals.len()
                );
            }
            TraceEventKind::ThreadDone => {
                println!("  {i:>7}  {:<16} t{}", "thread-done", e.thread.0);
            }
            k => {
                println!(
                    "  {i:>7}  {:<16} t{} site {}{} arg {}",
                    kind_name(k),
                    e.thread.0,
                    e.site.0,
                    label,
                    e.arg
                );
            }
        }
    }
}
