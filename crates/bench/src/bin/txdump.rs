//! Records a workload into an event trace and pretty-prints it — the
//! debugging companion of the record/replay pipeline. What this prints is
//! exactly the stream every pure-observer detector consumes, so a
//! surprising race report can be traced event by event.
//!
//! ```text
//! txdump <app> [--seed <n>] [--workers <n>] [--thread <t>]
//!              [--kind <k>[,<k>...]] [--head <n>] [--summary]
//! ```
//!
//! Kinds: `read write rmw acquire release signal wait spawn join
//! barrier-arrive barrier-release thread-done compute syscall`.
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p txrace-bench --bin txdump -- bodytrack --summary
//! cargo run --release -p txrace-bench --bin txdump -- vips --thread 1 --kind read,write --head 40
//! ```

use txrace::{Detector, Scheme};
use txrace_sim::{TraceEvent, TraceEventKind};
use txrace_workloads::by_name;

fn usage() -> ! {
    eprintln!(
        "usage:\n  txdump <app> [--seed <n>] [--workers <n>] [--thread <t>] \
         [--kind <k>[,<k>...]] [--head <n>] [--summary]"
    );
    std::process::exit(2);
}

fn parse_kind(s: &str) -> TraceEventKind {
    match s {
        "read" => TraceEventKind::Read,
        "write" => TraceEventKind::Write,
        "rmw" => TraceEventKind::Rmw,
        "acquire" => TraceEventKind::Acquire,
        "release" => TraceEventKind::Release,
        "signal" => TraceEventKind::Signal,
        "wait" => TraceEventKind::Wait,
        "spawn" => TraceEventKind::Spawn,
        "join" => TraceEventKind::Join,
        "barrier-arrive" => TraceEventKind::BarrierArrive,
        "barrier-release" => TraceEventKind::BarrierRelease,
        "thread-done" => TraceEventKind::ThreadDone,
        "compute" => TraceEventKind::Compute,
        "syscall" => TraceEventKind::Syscall,
        _ => usage(),
    }
}

fn kind_name(k: TraceEventKind) -> &'static str {
    match k {
        TraceEventKind::Read => "read",
        TraceEventKind::Write => "write",
        TraceEventKind::Rmw => "rmw",
        TraceEventKind::Acquire => "acquire",
        TraceEventKind::Release => "release",
        TraceEventKind::Signal => "signal",
        TraceEventKind::Wait => "wait",
        TraceEventKind::Spawn => "spawn",
        TraceEventKind::Join => "join",
        TraceEventKind::BarrierArrive => "barrier-arrive",
        TraceEventKind::BarrierRelease => "barrier-release",
        TraceEventKind::ThreadDone => "thread-done",
        TraceEventKind::Compute => "compute",
        TraceEventKind::Syscall => "syscall",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(app) = args.first() else { usage() };
    let mut seed = 42u64;
    let mut workers = 4usize;
    let mut thread: Option<u32> = None;
    let mut kinds: Option<Vec<TraceEventKind>> = None;
    let mut head: Option<usize> = None;
    let mut summary = false;

    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let val = |it: &mut std::slice::Iter<String>| it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--seed" => seed = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--thread" => thread = Some(val(&mut it).parse().unwrap_or_else(|_| usage())),
            "--kind" => kinds = Some(val(&mut it).split(',').map(parse_kind).collect()),
            "--head" => head = Some(val(&mut it).parse().unwrap_or_else(|_| usage())),
            "--summary" => summary = true,
            _ => usage(),
        }
    }

    let Some(w) = by_name(app, workers) else {
        eprintln!("unknown app {app:?}; try `txrace-cli list`");
        std::process::exit(2);
    };
    let log = Detector::new(w.config(Scheme::Tsan, seed)).record(&w.program);

    let census = log.census();
    println!(
        "{app} (seed {seed}, {workers} workers): {:?} in {} steps",
        log.result().status,
        log.result().steps
    );
    println!(
        "trace: {} events over {} threads ({} mem accesses, {} sync ops, {} syscalls, {} compute units)",
        log.len(),
        log.thread_count(),
        census.mem_accesses,
        census.sync_ops,
        census.syscalls,
        census.compute_units,
    );
    if summary {
        let mut counts = std::collections::BTreeMap::new();
        for e in log.events() {
            *counts.entry(kind_name(e.kind)).or_insert(0u64) += 1;
        }
        println!("\nevents by kind:");
        for (k, n) in counts {
            println!("  {k:<16} {n}");
        }
        return;
    }

    let keep = |e: &TraceEvent| {
        thread.is_none_or(|t| e.thread.0 == t)
            && kinds.as_ref().is_none_or(|ks| ks.contains(&e.kind))
    };
    let mut printed = 0usize;
    for (i, e) in log.events().iter().enumerate() {
        if !keep(e) {
            continue;
        }
        if head.is_some_and(|h| printed >= h) {
            println!("  ... (truncated by --head)");
            break;
        }
        printed += 1;
        let label = w
            .program
            .label_of(e.site)
            .map(|l| format!(" [{l}]"))
            .unwrap_or_default();
        match e.kind {
            TraceEventKind::BarrierRelease => {
                let (b, arrivals) = log.release_arrivals(e.arg);
                println!(
                    "  {i:>7}  {:<16} barrier {} releasing {} thread(s)",
                    "barrier-release",
                    b.0,
                    arrivals.len()
                );
            }
            TraceEventKind::ThreadDone => {
                println!("  {i:>7}  {:<16} t{}", "thread-done", e.thread.0);
            }
            k => {
                println!(
                    "  {i:>7}  {:<16} t{} site {}{} arg {}",
                    kind_name(k),
                    e.thread.0,
                    e.site.0,
                    label,
                    e.arg
                );
            }
        }
    }
}
