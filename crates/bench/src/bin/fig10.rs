//! Regenerates the paper's **Figure 10**: the number of distinct data
//! races TxRace detects in vips accumulated across multiple runs with
//! different schedules. The paper finds ~79 of 112 per run, a different
//! subset each time, reaching all 112 by the seventh run; TSan finds all
//! 112 in every run.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin fig10 [workers] [runs]
//! ```

use txrace::Scheme;
use txrace_bench::{map_cells, pool_width, run_scheme, Table};
use txrace_hb::RaceSet;
use txrace_workloads::by_name;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let runs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    println!(
        "TxRace reproduction — Figure 10: vips distinct races across runs (workers={workers})\n"
    );
    let w = by_name("vips", workers).expect("vips exists");
    let tsan = run_scheme(&w, Scheme::Tsan, 1);
    println!(
        "TSan reports {} distinct races every run (paper: 112)\n",
        tsan.races.distinct_count()
    );

    // Each run has its own seed, so the runs are independent pool cells;
    // only the cumulative merge below is order-sensitive, and it consumes
    // the results in input (run-number) order.
    let run_seeds: Vec<u64> = (1..=runs).collect();
    let outs = map_cells(pool_width(), &run_seeds, |_, &run| {
        run_scheme(&w, Scheme::txrace(), run)
    });
    let mut cumulative = RaceSet::new();
    let mut t = Table::new(&["run", "found this run", "cumulative distinct"]);
    for (run, out) in run_seeds.iter().zip(outs) {
        let this = out.races.distinct_count();
        cumulative.merge(&out.races);
        t.row(vec![
            run.to_string(),
            this.to_string(),
            cumulative.distinct_count().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper: ~79 per run, cumulative reaches 112 by run 7; here: cumulative {} of {}",
        cumulative.distinct_count(),
        tsan.races.distinct_count()
    );
}
