//! Regenerates the paper's **Figure 7**: the breakdown of TxRace's runtime
//! overhead into baseline, pure fast-path cost (xbegin/xend + fast-path
//! sync tracking + slow-only tiny regions), and the handling of conflict,
//! capacity, and unknown aborts.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin fig7 [workers] [seed]
//! ```

use txrace_bench::{evaluate_app, fmt_x, EvalOptions, Table};
use txrace_workloads::all_workloads;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("TxRace reproduction — Figure 7: overhead breakdown (workers={workers}, seed={seed})");
    println!("columns are multiples of the uninstrumented baseline\n");

    let mut t = Table::new(&[
        "application",
        "baseline",
        "xbegin/xend",
        "conflict",
        "capacity",
        "unknown",
        "total",
    ]);
    for w in all_workloads(workers) {
        let r = evaluate_app(
            &w,
            EvalOptions {
                seed,
                ..Default::default()
            },
        );
        let bd = r.txrace.breakdown;
        let base = r.txrace.baseline_cycles.max(1) as f64;
        let frac = |v: u64| format!("{:.2}", v as f64 / base);
        t.row(vec![
            w.name.to_string(),
            frac(bd.baseline),
            frac(bd.txn_mgmt),
            frac(bd.conflict),
            frac(bd.capacity),
            frac(bd.unknown),
            fmt_x(r.txrace.overhead),
        ]);
    }
    println!("{}", t.render());
    println!("note: 'baseline' can exceed 1.00 because slow-path re-execution");
    println!("redoes architectural work; the paper folds that into the abort bars.");
}
