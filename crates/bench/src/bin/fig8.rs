//! Regenerates the paper's **Figure 8**: TxRace overhead scalability at
//! 2, 4, and 8 worker threads, each normalized to the uninstrumented
//! execution at the same thread count. The paper's observations to look
//! for: conflict aborts grow with concurrency, capacity aborts shrink
//! (smaller per-worker datasets), and unknown aborts blow up at 8 threads
//! (hyperthread-saturated cores).
//!
//! ```text
//! cargo run --release -p txrace-bench --bin fig8 [seed]
//! ```

use txrace::Scheme;
use txrace_bench::{fmt_x, geomean, map_cells, pool_width, run_scheme, Table};
use txrace_workloads::all_workloads;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let counts = [2usize, 4, 8];

    println!("TxRace reproduction — Figure 8: scalability (seed={seed})\n");
    let mut t = Table::new(&["application", "2 threads", "4 threads", "8 threads"]);
    let mut per_count: Vec<Vec<f64>> = vec![Vec::new(); counts.len()];
    let mut aborts: Vec<(u64, u64, u64)> = vec![(0, 0, 0); counts.len()];

    // One pool cell per (app, thread count) pair, in fixed order; each
    // cell rebuilds its app at that worker count and runs independently.
    let names: Vec<&'static str> = all_workloads(2).iter().map(|w| w.name).collect();
    let grid: Vec<(&'static str, usize)> = names
        .iter()
        .flat_map(|&name| counts.iter().map(move |&workers| (name, workers)))
        .collect();
    let outs = map_cells(pool_width(), &grid, |_, &(name, workers)| {
        let w = txrace_workloads::by_name(name, workers).expect("known app");
        run_scheme(&w, Scheme::txrace(), seed)
    });
    for (name, row) in names.iter().zip(outs.chunks(counts.len())) {
        let mut cells = vec![name.to_string()];
        for (i, out) in row.iter().enumerate() {
            cells.push(fmt_x(out.overhead));
            per_count[i].push(out.overhead);
            let h = out.htm.as_ref().expect("txrace stats");
            aborts[i].0 += h.conflict_aborts;
            aborts[i].1 += h.capacity_aborts;
            aborts[i].2 += h.unknown_aborts;
        }
        t.row(cells);
    }
    println!("{}", t.render());
    for (i, &workers) in counts.iter().enumerate() {
        println!(
            "{workers} threads: geo.mean overhead {}, total conflict/capacity/unknown aborts = {}/{}/{}",
            fmt_x(geomean(&per_count[i])),
            aborts[i].0,
            aborts[i].1,
            aborts[i].2
        );
    }
    println!("\npaper: conflicts rise with threads, capacity falls, unknown explodes at 8 (5-9x).");
}
