//! The ProductionMode overhead/recall frontier: sweep the adaptive
//! controller's budget from "barely above baseline" to "anything goes"
//! and measure, per workload, the modeled overhead the duty-cycled
//! detector actually spends and the fraction of the TxRace+SA-flow race
//! set it still finds.
//!
//! Truth per app is the always-on TxRace run with full flow-sensitive
//! static pruning (`Scheme::txrace()` + `StaticPruneMode::FullFlow`) —
//! the strongest always-on configuration in the repo — so recall here
//! reads as "what does budgeting cost on top of the best static
//! pipeline", not as recall against the TSan oracle.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin frontier [workers] [seed] [--json]
//! ```
//!
//! With `--json` the binary prints one JSON row per (app × budget) cell
//! (`BENCH_frontier.json` is this output redirected to a file); otherwise
//! it renders a table plus per-budget geomean/recall summaries.

use txrace::{recall, Detector, Scheme, StaticPruneMode};
use txrace_bench::{fmt_x, geomean, json_rows, map_cells, paper, pool_width, JsonValue, Table};
use txrace_workloads::all_workloads;

/// Budget grid, as multipliers over the uninstrumented baseline. The
/// low end (1.05x) is tighter than any always-on scheme achieves; the
/// high end (2.0x) is loose enough that every app stays always-on.
const BUDGETS: [f64; 6] = [1.05, 1.1, 1.2, 1.35, 1.5, 2.0];

struct Cell {
    app: &'static str,
    budget: f64,
    overhead: f64,
    races: usize,
    truth_races: usize,
    recall: f64,
    epochs: usize,
    active_epochs: usize,
    paper_app: bool,
}

fn main() {
    let mut workers = 4usize;
    let mut seed = 42u64;
    let mut json = false;
    let mut positional = 0;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if let Ok(n) = arg.parse::<u64>() {
            match positional {
                0 => workers = n as usize,
                _ => seed = n,
            }
            positional += 1;
        }
    }

    let apps = all_workloads(workers);

    // Truth runs: one always-on TxRace+FullFlow run per app, reused by
    // every budget point of that app.
    let truths = map_cells(pool_width(), &apps, |_, w| {
        let cfg = w
            .config(Scheme::txrace(), seed)
            .with_prune(StaticPruneMode::FullFlow);
        let out = Detector::new(cfg).run(&w.program);
        assert!(out.completed(), "{}: truth run did not complete", w.name);
        out
    });

    // The production grid: every (app × budget) cell is an independent
    // deterministic run.
    let grid: Vec<(usize, f64)> = (0..apps.len())
        .flat_map(|ai| BUDGETS.iter().map(move |&b| (ai, b)))
        .collect();
    let cells: Vec<Cell> = map_cells(pool_width(), &grid, |_, &(ai, budget)| {
        let w = &apps[ai];
        let truth = &truths[ai];
        let out = Detector::new(w.config(Scheme::production(budget), seed)).run(&w.program);
        assert!(
            out.completed(),
            "{}: production run (budget {budget}) did not complete",
            w.name
        );
        let tm = out
            .telemetry
            .as_ref()
            .expect("production runs always carry telemetry");
        Cell {
            app: w.name,
            budget,
            overhead: out.overhead,
            races: out.races.distinct_count(),
            truth_races: truth.races.distinct_count(),
            recall: recall(&out.races, &truth.races),
            epochs: tm.epochs.len(),
            active_epochs: tm.active_epochs(),
            paper_app: paper::row(w.name).is_some(),
        }
    });

    if json {
        let rows: Vec<Vec<(&str, JsonValue)>> = cells
            .iter()
            .map(|c| {
                vec![
                    ("app", JsonValue::Str(c.app.to_string())),
                    ("budget", JsonValue::Num(c.budget)),
                    ("overhead", JsonValue::Num(c.overhead)),
                    ("races", JsonValue::Int(c.races as u64)),
                    ("truth_races", JsonValue::Int(c.truth_races as u64)),
                    ("recall", JsonValue::Num(c.recall)),
                    ("epochs", JsonValue::Int(c.epochs as u64)),
                    ("active_epochs", JsonValue::Int(c.active_epochs as u64)),
                    ("paper_app", JsonValue::Int(c.paper_app as u64)),
                ]
            })
            .collect();
        println!("{}", json_rows(&rows));
        return;
    }

    println!("ProductionMode budget frontier — workers={workers}, seed={seed}");
    println!("truth = always-on TxRace + SA full-flow pruning\n");
    let mut header = vec!["application".to_string()];
    for b in BUDGETS {
        header.push(format!("{b:.2}x ovh/rec"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for (ai, w) in apps.iter().enumerate() {
        let mut row = vec![w.name.to_string()];
        for (bi, _) in BUDGETS.iter().enumerate() {
            let c = &cells[ai * BUDGETS.len() + bi];
            row.push(format!("{} / {:.2}", fmt_x(c.overhead), c.recall));
        }
        t.row(row);
    }
    println!("{}", t.render());

    println!(
        "per-budget summary over the {} paper applications:",
        truths
            .iter()
            .zip(&apps)
            .filter(|(_, w)| paper::row(w.name).is_some())
            .count()
    );
    let mut s = Table::new(&[
        "budget",
        "geo.mean overhead",
        "mean recall",
        "apps fully active",
    ]);
    for (bi, &b) in BUDGETS.iter().enumerate() {
        let paper_cells: Vec<&Cell> = cells
            .iter()
            .skip(bi)
            .step_by(BUDGETS.len())
            .filter(|c| c.paper_app)
            .collect();
        let ovh: Vec<f64> = paper_cells.iter().map(|c| c.overhead).collect();
        let mean_recall =
            paper_cells.iter().map(|c| c.recall).sum::<f64>() / paper_cells.len().max(1) as f64;
        let fully_active = paper_cells
            .iter()
            .filter(|c| c.active_epochs == c.epochs)
            .count();
        s.row(vec![
            format!("{b:.2}x"),
            fmt_x(geomean(&ovh)),
            format!("{mean_recall:.2}"),
            format!("{fully_active}/{}", paper_cells.len()),
        ]);
    }
    println!("{}", s.render());
    println!(
        "the controller spends its whole allowance before going idle, so\n\
         overhead tracks the budget until the app is cheap enough to run\n\
         always-on; recall climbs with the budget as more of each app's\n\
         execution stays monitored."
    );
}
