//! Measures what the record/replay pipeline buys: wall-clock of the
//! pure-observer sweeps behind Figures 11–13 done the old way (re-execute
//! the program for every scheme) versus the pipeline way (record each
//! (workload, seed) once, fan replay consumers across cores). Emits the
//! machine-readable trajectory `BENCH_replay.json` in the same flat
//! format as `BENCH_table1.json`.
//!
//! ```text
//! cargo run --release -p txrace-bench --bin bench_replay \
//!     [workers] [seed] > BENCH_replay.json
//! ```
//!
//! The TxRace cells of those figures are excluded on both sides: the
//! engine steers execution, runs live under either strategy, and would
//! only dilute the comparison. Both strategies must produce identical
//! results cell for cell — the binary asserts it.

use std::time::Instant;

use txrace::{RunOutcome, Scheme};
use txrace_bench::{
    geomean, json_rows, map_cells, pool_width, record_workload, replay_scheme,
    replay_schemes_fanout, run_scheme, JsonValue,
};
use txrace_hb::RaceReport;
use txrace_workloads::{all_workloads, by_name, Workload};

/// Timed repetitions per strategy; the minimum is reported.
const REPS: u32 = 2;

/// One figure's pure-observer sweep: `schemes` evaluated on every
/// `(workload, seed)` unit.
struct FigSpec {
    name: &'static str,
    units: Vec<(Workload, u64)>,
    schemes: Vec<Scheme>,
}

/// The result fingerprint both strategies must agree on, bit for bit.
#[derive(PartialEq)]
struct CellResult {
    races: Vec<RaceReport>,
    total_cycles: u64,
    checks: u64,
}

impl CellResult {
    fn of(out: &RunOutcome) -> Self {
        CellResult {
            races: out.races.reports().to_vec(),
            total_cycles: out.breakdown.total(),
            checks: out.checks,
        }
    }
}

fn cells(spec: &FigSpec) -> Vec<(usize, Scheme)> {
    (0..spec.units.len())
        .flat_map(|u| spec.schemes.iter().map(move |s| (u, s.clone())))
        .collect()
}

/// The old strategy: every cell re-executes the program live.
fn reexec(spec: &FigSpec) -> Vec<CellResult> {
    let grid = cells(spec);
    map_cells(pool_width(), &grid, |_, (u, scheme)| {
        let (w, seed) = &spec.units[*u];
        CellResult::of(&run_scheme(w, scheme.clone(), *seed))
    })
}

/// The pipeline strategy: record each unit once, replay every scheme.
fn replayed(spec: &FigSpec) -> Vec<CellResult> {
    let logs = map_cells(pool_width(), &spec.units, |_, (w, seed)| {
        record_workload(w, *seed)
    });
    let grid = cells(spec);
    map_cells(pool_width(), &grid, |_, (u, scheme)| {
        let (w, seed) = &spec.units[*u];
        CellResult::of(&replay_scheme(w, &logs[*u], scheme.clone(), *seed))
    })
}

/// One consumer's observability row out of the fan-out strategy.
struct ConsumerRow {
    unit: usize,
    scheme: String,
    wall_ns: u64,
    events: u64,
}

/// Short stable scheme label for JSON rows.
fn scheme_label(s: &Scheme) -> String {
    match s {
        Scheme::Tsan => "tsan".to_string(),
        Scheme::TsanSampling { rate } => format!("tsan@{rate}"),
        other => format!("{other:?}"),
    }
}

/// The parallel strategy: record each unit once, then fan *all* schemes
/// over that unit's shared log in a single concurrent pass. Returns the
/// cell results in [`cells`] grid order plus per-consumer wall-time /
/// event-count rows (the shard-imbalance observability).
fn fanned(spec: &FigSpec) -> (Vec<CellResult>, Vec<ConsumerRow>) {
    let logs = map_cells(pool_width(), &spec.units, |_, (w, seed)| {
        record_workload(w, *seed)
    });
    let mut results = Vec::new();
    let mut consumer_rows = Vec::new();
    for (u, ((w, seed), log)) in spec.units.iter().zip(&logs).enumerate() {
        let outs = replay_schemes_fanout(w, log, &spec.schemes, *seed, pool_width());
        for (f, scheme) in outs.iter().zip(&spec.schemes) {
            results.push(CellResult::of(&f.outcome));
            consumer_rows.push(ConsumerRow {
                unit: u,
                scheme: scheme_label(scheme),
                wall_ns: f.wall_ns,
                events: f.events,
            });
        }
    }
    (results, consumer_rows)
}

fn rate_sweep() -> Vec<Scheme> {
    let mut schemes = vec![Scheme::Tsan];
    schemes.extend((0..=100).step_by(10).map(|pct| Scheme::TsanSampling {
        rate: pct as f64 / 100.0,
    }));
    schemes
}

fn main() {
    let mut args = txrace_bench::args_after_cache_flag().into_iter();
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let racy_apps = [
        "fluidanimate",
        "vips",
        "raytrace",
        "ferret",
        "x264",
        "bodytrack",
        "facesim",
        "streamcluster",
        "canneal",
    ];
    let mut fig11_apps = all_workloads(workers);
    fig11_apps.retain(|w| racy_apps.contains(&w.name));
    let bodytrack = || by_name("bodytrack", workers).expect("bodytrack exists");

    let specs = [
        FigSpec {
            name: "fig11",
            units: fig11_apps.into_iter().map(|w| (w, seed)).collect(),
            schemes: vec![
                Scheme::Tsan,
                Scheme::TsanSampling { rate: 0.1 },
                Scheme::TsanSampling { rate: 0.5 },
            ],
        },
        FigSpec {
            name: "fig12",
            units: vec![(bodytrack(), seed)],
            schemes: rate_sweep(),
        },
        FigSpec {
            name: "fig13",
            units: (0..3).map(|s| (bodytrack(), s)).collect(),
            schemes: rate_sweep(),
        },
    ];

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let total_start = Instant::now();
    for spec in &specs {
        let mut reexec_ns = u64::MAX;
        let mut replay_ns = u64::MAX;
        let mut fanout_ns = u64::MAX;
        let mut fanout_rows = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let old = reexec(spec);
            reexec_ns = reexec_ns.min(t0.elapsed().as_nanos() as u64);
            let t1 = Instant::now();
            let new = replayed(spec);
            replay_ns = replay_ns.min(t1.elapsed().as_nanos() as u64);
            assert!(
                old == new,
                "{}: replay path diverged from re-execution",
                spec.name
            );
            let t2 = Instant::now();
            let (par, consumers) = fanned(spec);
            let ns = t2.elapsed().as_nanos() as u64;
            if ns < fanout_ns {
                fanout_ns = ns;
                fanout_rows = consumers;
            }
            assert!(
                par == new,
                "{}: fan-out pass diverged from serial replay",
                spec.name
            );
        }
        let speedup = reexec_ns as f64 / replay_ns.max(1) as f64;
        speedups.push(speedup);
        rows.push(vec![
            ("app", JsonValue::Str(spec.name.to_string())),
            ("cells", JsonValue::Int(cells(spec).len() as u64)),
            ("recordings", JsonValue::Int(spec.units.len() as u64)),
            ("wall_ns", JsonValue::Int(replay_ns)),
            ("reexec_wall_ns", JsonValue::Int(reexec_ns)),
            ("fanout_wall_ns", JsonValue::Int(fanout_ns)),
            (
                "speedup",
                JsonValue::Num((speedup * 1000.0).round() / 1000.0),
            ),
        ]);
        for c in fanout_rows {
            rows.push(vec![
                ("app", JsonValue::Str(spec.name.to_string())),
                ("row", JsonValue::Str("consumer".to_string())),
                ("unit", JsonValue::Int(c.unit as u64)),
                ("scheme", JsonValue::Str(c.scheme)),
                ("wall_ns", JsonValue::Int(c.wall_ns)),
                ("events", JsonValue::Int(c.events)),
            ]);
        }
    }
    rows.push(vec![
        ("app", JsonValue::Str("(total)".to_string())),
        ("workers", JsonValue::Int(workers as u64)),
        ("seed", JsonValue::Int(seed)),
        ("reps", JsonValue::Int(u64::from(REPS))),
        ("pool", JsonValue::Int(pool_width() as u64)),
        (
            "wall_ns",
            JsonValue::Int(total_start.elapsed().as_nanos() as u64),
        ),
        (
            "speedup",
            JsonValue::Num((geomean(&speedups) * 1000.0).round() / 1000.0),
        ),
    ]);
    println!("{}", json_rows(&rows));
}
