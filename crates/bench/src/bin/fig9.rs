//! Regenerates the paper's **Figure 9**: effectiveness of the loop-cut
//! optimization — TSan vs TxRace-NoOpt vs TxRace-DynLoopcut vs
//! TxRace-ProfLoopcut (paper geomeans: 11.68x / — / 5.34x / 4.65x, with
//! Prof best and NoOpt worst among the TxRace variants).
//!
//! ```text
//! cargo run --release -p txrace-bench --bin fig9 [workers] [seed]
//! ```

use txrace::{LoopcutMode, Scheme};
use txrace_bench::{fmt_x, geomean, map_cells, paper, pool_width, run_scheme, Table};
use txrace_workloads::all_workloads;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!(
        "TxRace reproduction — Figure 9: loop-cut effectiveness (workers={workers}, seed={seed})\n"
    );
    let mut t = Table::new(&["application", "TSan", "NoOpt", "DynLoopcut", "ProfLoopcut"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let schemes = [
        Scheme::Tsan,
        Scheme::txrace_loopcut(LoopcutMode::NoOpt),
        Scheme::txrace_loopcut(LoopcutMode::Dyn),
        Scheme::txrace_loopcut(LoopcutMode::Prof),
    ];
    // One pool cell per (app, scheme) pair; rows rendered in input order.
    let apps = all_workloads(workers);
    let grid: Vec<(usize, Scheme)> = (0..apps.len())
        .flat_map(|a| schemes.iter().map(move |s| (a, s.clone())))
        .collect();
    let outs = map_cells(pool_width(), &grid, |_, (a, s)| {
        run_scheme(&apps[*a], s.clone(), seed)
    });
    for (w, row) in apps.iter().zip(outs.chunks(schemes.len())) {
        let mut cells = vec![w.name.to_string()];
        for (i, out) in row.iter().enumerate() {
            cells.push(fmt_x(out.overhead));
            // Geomeans compare against the paper, so they cover the
            // paper apps only (the message-passing families still get
            // table rows above).
            if paper::row(w.name).is_some() {
                cols[i].push(out.overhead);
            }
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "geo.mean (paper apps): TSan {} (paper 11.68x), NoOpt {}, Dyn {} (paper 5.34x), Prof {} (paper 4.65x)",
        fmt_x(geomean(&cols[0])),
        fmt_x(geomean(&cols[1])),
        fmt_x(geomean(&cols[2])),
        fmt_x(geomean(&cols[3])),
    );
}
