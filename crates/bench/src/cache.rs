//! On-disk recording cache: serialized [`EventLog`]s under
//! `target/trace-cache/`, keyed by (workload, seed, program hash), so
//! the figure and benchmark binaries share recordings across
//! *invocations* — fig11/12/13, baselines, and `bench_replay` all record
//! each (workload, seed) pair once per checkout instead of once per run.
//!
//! Opt out with `--no-trace-cache` (every recording binary forwards the
//! flag here via [`args_after_cache_flag`]) or by setting the
//! `TXRACE_NO_TRACE_CACHE` environment variable. Entries are validated
//! on load (magic, version, bounds); any decode failure is treated as a
//! miss and the workload is re-recorded. The key hashes the program IR,
//! scheduler policy, and interrupt model, so editing a workload simply
//! misses the old entry rather than replaying a stale schedule.
//!
//! The cache is bounded: set `TXRACE_TRACE_CACHE_MAX_BYTES` to cap its
//! on-disk footprint — after every store the oldest entries (by
//! modification time) are evicted until the total fits. Inspect the
//! footprint with `txdump --stats` ([`cache_stats`]) and wipe it with
//! `txdump --cache-clear` ([`clear_trace_cache`]).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use txrace_sim::EventLog;
use txrace_workloads::Workload;

static DISABLED: AtomicBool = AtomicBool::new(false);

/// Disables the trace cache for the rest of this process (both lookups
/// and writes) — the `--no-trace-cache` CLI flag lands here.
pub fn disable_trace_cache() {
    DISABLED.store(true, Ordering::Relaxed);
}

/// Collects the process CLI arguments (after the program name),
/// consuming any `--no-trace-cache` flag — which disables the cache —
/// and returning the remaining arguments in order.
pub fn args_after_cache_flag() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--no-trace-cache" {
                disable_trace_cache();
                false
            } else {
                true
            }
        })
        .collect()
}

fn enabled() -> bool {
    !DISABLED.load(Ordering::Relaxed) && std::env::var_os("TXRACE_NO_TRACE_CACHE").is_none()
}

/// `$CARGO_TARGET_DIR/trace-cache` (or `target/trace-cache`).
fn cache_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("trace-cache")
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Cache file name for one (workload, seed) recording. The hash covers
/// everything the recorded schedule depends on — the program IR, the
/// scheduler policy, the interrupt model, and the seed — plus the wire
/// format version, so a format bump (e.g. the channel events in v2)
/// misses every pre-bump entry instead of relying on decode rejection.
fn cache_file(w: &Workload, seed: u64) -> String {
    let mut h = fnv1a(
        0xcbf2_9ce4_8422_2325,
        &txrace_sim::LOG_VERSION.to_le_bytes(),
    );
    h = fnv1a(h, format!("{:?}", w.program).as_bytes());
    h = fnv1a(h, format!("{:?}/{:?}", w.sched, w.interrupts).as_bytes());
    h = fnv1a(h, &seed.to_le_bytes());
    format!(
        "{}-s{seed}-v{}-{h:016x}.txlog",
        w.name,
        txrace_sim::LOG_VERSION
    )
}

/// Returns the cached recording for `(w, seed)` if present and valid;
/// otherwise calls `record`, stores the result (best-effort — a
/// read-only target dir silently skips the store), and returns it.
/// Stores respect the `TXRACE_TRACE_CACHE_MAX_BYTES` cap (oldest
/// entries evicted first).
pub fn load_or_record(w: &Workload, seed: u64, record: impl FnOnce() -> EventLog) -> EventLog {
    if !enabled() {
        return record();
    }
    let path = cache_dir().join(cache_file(w, seed));
    if let Ok(bytes) = fs::read(&path) {
        if let Ok(log) = EventLog::from_bytes(&bytes) {
            return log;
        }
    }
    let log = record();
    if fs::create_dir_all(cache_dir()).is_ok() {
        // Write-then-rename so a concurrent reader never sees a torn
        // file; the pid suffix keeps concurrent writers off each other.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if fs::write(&tmp, log.to_bytes()).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
        if let Some(cap) = byte_cap() {
            enforce_byte_cap(&cache_dir(), cap);
        }
    }
    log
}

/// On-disk footprint of the trace cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of cached recordings (`.txlog` files).
    pub entries: usize,
    /// Total bytes those entries occupy.
    pub bytes: u64,
}

/// Every cache entry in `dir` as `(path, len, mtime)`, unsorted. Stray
/// `.tmp.*` leftovers from killed writers are included so stats and
/// eviction cover the real footprint.
fn entries_in(dir: &std::path::Path) -> Vec<(PathBuf, u64, std::time::SystemTime)> {
    let Ok(dir) = fs::read_dir(dir) else {
        return Vec::new();
    };
    dir.flatten()
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if !(name.ends_with(".txlog") || name.contains(".tmp.")) {
                return None;
            }
            let md = e.metadata().ok()?;
            let mtime = md.modified().unwrap_or(std::time::UNIX_EPOCH);
            Some((e.path(), md.len(), mtime))
        })
        .collect()
}

/// Current entry/byte counts for the trace cache directory.
pub fn cache_stats() -> CacheStats {
    stats_of(&cache_dir())
}

fn stats_of(dir: &std::path::Path) -> CacheStats {
    let es = entries_in(dir);
    CacheStats {
        entries: es.len(),
        bytes: es.iter().map(|&(_, len, _)| len).sum(),
    }
}

/// Deletes every cached recording, returning what was removed.
pub fn clear_trace_cache() -> CacheStats {
    let mut removed = CacheStats::default();
    for (path, len, _) in entries_in(&cache_dir()) {
        if fs::remove_file(&path).is_ok() {
            removed.entries += 1;
            removed.bytes += len;
        }
    }
    removed
}

/// The `TXRACE_TRACE_CACHE_MAX_BYTES` cap, if set to a parseable u64.
fn byte_cap() -> Option<u64> {
    std::env::var("TXRACE_TRACE_CACHE_MAX_BYTES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

/// Evicts oldest-first (by mtime, path as tiebreak for determinism)
/// until the cache in `dir` fits in `cap` bytes.
fn enforce_byte_cap(dir: &std::path::Path, cap: u64) {
    let mut es = entries_in(dir);
    let mut total: u64 = es.iter().map(|&(_, len, _)| len).sum();
    if total <= cap {
        return;
    }
    es.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
    for (path, len, _) in es {
        if total <= cap {
            break;
        }
        if fs::remove_file(&path).is_ok() {
            total -= len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_workloads::by_name;

    #[test]
    fn key_distinguishes_workload_seed_and_shape() {
        let a = by_name("blackscholes", 2).unwrap();
        let b = by_name("blackscholes", 4).unwrap();
        let c = by_name("swaptions", 2).unwrap();
        assert_ne!(cache_file(&a, 1), cache_file(&a, 2));
        assert_ne!(cache_file(&a, 1), cache_file(&b, 1));
        assert_ne!(cache_file(&a, 1), cache_file(&c, 1));
        // The wire-format version is part of the name, so bumping
        // LOG_VERSION orphans (rather than decodes-and-rejects) old
        // entries.
        assert!(
            cache_file(&a, 1).contains(&format!("-v{}-", txrace_sim::LOG_VERSION)),
            "cache key must embed the wire format version"
        );
    }

    #[test]
    fn stats_count_entries_and_eviction_is_oldest_first() {
        // A scratch dir of our own, so the test neither touches nor is
        // touched by real recordings from concurrently running tests.
        let dir = cache_dir().with_file_name(format!("trace-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let old = dir.join("hygiene-old.txlog");
        let new = dir.join("hygiene-new.txlog");
        let skip = dir.join("not-a-cache-entry.json");
        fs::write(&old, vec![0u8; 64]).unwrap();
        // Distinct mtimes: backdate the old entry instead of sleeping.
        let past = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        filetime_set(&old, past).unwrap();
        fs::write(&new, vec![0u8; 64]).unwrap();
        fs::write(&skip, b"ignored").unwrap();

        let stats = stats_of(&dir);
        assert_eq!(
            stats,
            CacheStats {
                entries: 2,
                bytes: 128
            },
            "non-.txlog files don't count"
        );

        // A cap the cache already fits evicts nothing.
        enforce_byte_cap(&dir, 128);
        assert!(old.exists() && new.exists());

        // Evicting down to 64 bytes must take `old` (oldest mtime).
        enforce_byte_cap(&dir, 64);
        assert!(!old.exists(), "oldest entry evicted first");
        assert!(new.exists(), "newer entry survives");
        assert_eq!(
            stats_of(&dir),
            CacheStats {
                entries: 1,
                bytes: 64
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Sets `path`'s mtime (std-only: open + `File::set_times`).
    fn filetime_set(path: &std::path::Path, t: std::time::SystemTime) -> std::io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_times(fs::FileTimes::new().set_modified(t))
    }

    #[test]
    fn cache_round_trips_a_recording() {
        let w = by_name("blackscholes", 2).unwrap();
        // Unusual seed so this test owns its cache entry.
        let seed = 0xC0FFEE;
        let path = cache_dir().join(cache_file(&w, seed));
        let _ = fs::remove_file(&path);
        let mut recorded = 0;
        let first = load_or_record(&w, seed, || {
            recorded += 1;
            crate::runner::record_workload_uncached(&w, seed)
        });
        let second = load_or_record(&w, seed, || {
            recorded += 1;
            crate::runner::record_workload_uncached(&w, seed)
        });
        if path.exists() {
            assert_eq!(recorded, 1, "second call should hit the cache");
            let _ = fs::remove_file(&path);
        }
        assert_eq!(first.events(), second.events());
        assert_eq!(first.final_memory(), second.final_memory());
        assert_eq!(first.result(), second.result());
        assert_eq!(first.census(), second.census());
    }
}
