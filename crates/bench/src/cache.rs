//! On-disk recording cache: serialized [`EventLog`]s under
//! `target/trace-cache/`, keyed by (workload, seed, program hash), so
//! the figure and benchmark binaries share recordings across
//! *invocations* — fig11/12/13, baselines, and `bench_replay` all record
//! each (workload, seed) pair once per checkout instead of once per run.
//!
//! Opt out with `--no-trace-cache` (every recording binary forwards the
//! flag here via [`args_after_cache_flag`]) or by setting the
//! `TXRACE_NO_TRACE_CACHE` environment variable. Entries are validated
//! on load (magic, version, bounds); any decode failure is treated as a
//! miss and the workload is re-recorded. The key hashes the program IR,
//! scheduler policy, and interrupt model, so editing a workload simply
//! misses the old entry rather than replaying a stale schedule.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use txrace_sim::EventLog;
use txrace_workloads::Workload;

static DISABLED: AtomicBool = AtomicBool::new(false);

/// Disables the trace cache for the rest of this process (both lookups
/// and writes) — the `--no-trace-cache` CLI flag lands here.
pub fn disable_trace_cache() {
    DISABLED.store(true, Ordering::Relaxed);
}

/// Collects the process CLI arguments (after the program name),
/// consuming any `--no-trace-cache` flag — which disables the cache —
/// and returning the remaining arguments in order.
pub fn args_after_cache_flag() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--no-trace-cache" {
                disable_trace_cache();
                false
            } else {
                true
            }
        })
        .collect()
}

fn enabled() -> bool {
    !DISABLED.load(Ordering::Relaxed) && std::env::var_os("TXRACE_NO_TRACE_CACHE").is_none()
}

/// `$CARGO_TARGET_DIR/trace-cache` (or `target/trace-cache`).
fn cache_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("trace-cache")
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Cache file name for one (workload, seed) recording. The hash covers
/// everything the recorded schedule depends on: the program IR, the
/// scheduler policy, the interrupt model, and the seed.
fn cache_file(w: &Workload, seed: u64) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325;
    h = fnv1a(h, format!("{:?}", w.program).as_bytes());
    h = fnv1a(h, format!("{:?}/{:?}", w.sched, w.interrupts).as_bytes());
    h = fnv1a(h, &seed.to_le_bytes());
    format!("{}-s{seed}-{h:016x}.txlog", w.name)
}

/// Returns the cached recording for `(w, seed)` if present and valid;
/// otherwise calls `record`, stores the result (best-effort — a
/// read-only target dir silently skips the store), and returns it.
pub fn load_or_record(w: &Workload, seed: u64, record: impl FnOnce() -> EventLog) -> EventLog {
    if !enabled() {
        return record();
    }
    let path = cache_dir().join(cache_file(w, seed));
    if let Ok(bytes) = fs::read(&path) {
        if let Ok(log) = EventLog::from_bytes(&bytes) {
            return log;
        }
    }
    let log = record();
    if fs::create_dir_all(cache_dir()).is_ok() {
        // Write-then-rename so a concurrent reader never sees a torn
        // file; the pid suffix keeps concurrent writers off each other.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if fs::write(&tmp, log.to_bytes()).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_workloads::by_name;

    #[test]
    fn key_distinguishes_workload_seed_and_shape() {
        let a = by_name("blackscholes", 2).unwrap();
        let b = by_name("blackscholes", 4).unwrap();
        let c = by_name("swaptions", 2).unwrap();
        assert_ne!(cache_file(&a, 1), cache_file(&a, 2));
        assert_ne!(cache_file(&a, 1), cache_file(&b, 1));
        assert_ne!(cache_file(&a, 1), cache_file(&c, 1));
    }

    #[test]
    fn cache_round_trips_a_recording() {
        let w = by_name("blackscholes", 2).unwrap();
        // Unusual seed so this test owns its cache entry.
        let seed = 0xC0FFEE;
        let path = cache_dir().join(cache_file(&w, seed));
        let _ = fs::remove_file(&path);
        let mut recorded = 0;
        let first = load_or_record(&w, seed, || {
            recorded += 1;
            crate::runner::record_workload_uncached(&w, seed)
        });
        let second = load_or_record(&w, seed, || {
            recorded += 1;
            crate::runner::record_workload_uncached(&w, seed)
        });
        if path.exists() {
            assert_eq!(recorded, 1, "second call should hit the cache");
            let _ = fs::remove_file(&path);
        }
        assert_eq!(first.events(), second.events());
        assert_eq!(first.final_memory(), second.final_memory());
        assert_eq!(first.result(), second.result());
        assert_eq!(first.census(), second.census());
    }
}
