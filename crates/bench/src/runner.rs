//! The per-app evaluation driver shared by all table/figure binaries.

use txrace::{recall, Detector, LoopcutMode, RunOutcome, Scheme, TxRaceOpts};
use txrace_workloads::Workload;

/// Options for one app evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Scheduling seed.
    pub seed: u64,
    /// Loop-cut mode for the TxRace run.
    pub loopcut: LoopcutMode,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            seed: 42,
            loopcut: LoopcutMode::Dyn,
        }
    }
}

/// Everything Table 1/2 needs about one app: both detectors on the same
/// workload and seed.
#[derive(Debug)]
pub struct AppResult {
    /// Application name.
    pub name: &'static str,
    /// Full TSan run.
    pub tsan: RunOutcome,
    /// TxRace run.
    pub txrace: RunOutcome,
    /// Recall of TxRace against TSan's reports.
    pub recall: f64,
    /// Cost-effectiveness vs TSan (Table 2): recall / normalized overhead.
    pub cost_effectiveness: f64,
}

impl AppResult {
    /// TxRace overhead normalized to TSan's (Table 2 "overhead" column).
    pub fn normalized_overhead(&self) -> f64 {
        let tsan_extra = (self.tsan.overhead - 1.0).max(1e-9);
        let tx_extra = (self.txrace.overhead - 1.0).max(0.0);
        tx_extra / tsan_extra
    }
}

/// Runs TSan and TxRace on `w` and scores them.
pub fn evaluate_app(w: &Workload, opts: EvalOptions) -> AppResult {
    let tsan = Detector::new(w.config(Scheme::Tsan, opts.seed)).run(&w.program);
    let txopts = TxRaceOpts {
        loopcut: opts.loopcut,
        ..TxRaceOpts::default()
    };
    let txrace = Detector::new(w.config(Scheme::TxRace(txopts), opts.seed)).run(&w.program);
    assert!(tsan.completed(), "{}: TSan run did not complete", w.name);
    assert!(
        txrace.completed(),
        "{}: TxRace run did not complete",
        w.name
    );
    let rec = recall(&txrace.races, &tsan.races);
    let mut result = AppResult {
        name: w.name,
        tsan,
        txrace,
        recall: rec,
        cost_effectiveness: 0.0,
    };
    let norm = result.normalized_overhead();
    result.cost_effectiveness = if norm > 0.0 { rec / norm } else { rec / 1e-9 };
    result
}

/// Runs one scheme on a workload.
pub fn run_scheme(w: &Workload, scheme: Scheme, seed: u64) -> RunOutcome {
    let out = Detector::new(w.config(scheme, seed)).run(&w.program);
    assert!(out.completed(), "{}: run did not complete", w.name);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_workloads::by_name;

    #[test]
    fn evaluate_runs_both_detectors() {
        let w = by_name("blackscholes", 2).unwrap();
        let r = evaluate_app(&w, EvalOptions::default());
        assert!(r.tsan.completed() && r.txrace.completed());
        assert!(r.recall >= 0.0 && r.recall <= 1.0);
        assert!(r.txrace.htm.is_some());
        assert!(r.tsan.htm.is_none());
    }
}
