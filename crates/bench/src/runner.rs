//! The per-app evaluation driver shared by all table/figure binaries.

use txrace::{recall, Detector, LoopcutMode, RunOutcome, Scheme, TxRaceOpts};
use txrace_sim::EventLog;
use txrace_workloads::Workload;

/// Options for one app evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Scheduling seed.
    pub seed: u64,
    /// Loop-cut mode for the TxRace run.
    pub loopcut: LoopcutMode,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            seed: 42,
            loopcut: LoopcutMode::Dyn,
        }
    }
}

/// Everything Table 1/2 needs about one app: both detectors on the same
/// workload and seed.
#[derive(Debug)]
pub struct AppResult {
    /// Application name.
    pub name: &'static str,
    /// Full TSan run.
    pub tsan: RunOutcome,
    /// TxRace run.
    pub txrace: RunOutcome,
    /// Recall of TxRace against TSan's reports.
    pub recall: f64,
    /// Cost-effectiveness vs TSan (Table 2): recall / normalized overhead.
    pub cost_effectiveness: f64,
}

impl AppResult {
    /// TxRace overhead normalized to TSan's (Table 2 "overhead" column).
    pub fn normalized_overhead(&self) -> f64 {
        let tsan_extra = (self.tsan.overhead - 1.0).max(1e-9);
        let tx_extra = (self.txrace.overhead - 1.0).max(0.0);
        tx_extra / tsan_extra
    }
}

/// Runs TSan and TxRace on `w` and scores them.
pub fn evaluate_app(w: &Workload, opts: EvalOptions) -> AppResult {
    let tsan = Detector::new(w.config(Scheme::Tsan, opts.seed)).run(&w.program);
    let txopts = TxRaceOpts {
        loopcut: opts.loopcut,
        ..TxRaceOpts::default()
    };
    let txrace = Detector::new(w.config(Scheme::TxRace(txopts), opts.seed)).run(&w.program);
    assert!(tsan.completed(), "{}: TSan run did not complete", w.name);
    assert!(
        txrace.completed(),
        "{}: TxRace run did not complete",
        w.name
    );
    let rec = recall(&txrace.races, &tsan.races);
    let mut result = AppResult {
        name: w.name,
        tsan,
        txrace,
        recall: rec,
        cost_effectiveness: 0.0,
    };
    let norm = result.normalized_overhead();
    result.cost_effectiveness = if norm > 0.0 { rec / norm } else { rec / 1e-9 };
    result
}

/// Runs one scheme on a workload.
pub fn run_scheme(w: &Workload, scheme: Scheme, seed: u64) -> RunOutcome {
    let out = Detector::new(w.config(scheme, seed)).run(&w.program);
    assert!(out.completed(), "{}: run did not complete", w.name);
    out
}

/// Records `w` once at `seed` into a replayable trace. Scheduling depends
/// only on the workload's scheduler policy and the seed — never on the
/// detection scheme — so one recording serves every pure-observer scheme
/// (TSan, all sampling rates, lockset) via [`replay_scheme`].
///
/// Recordings are memoized on disk under `target/trace-cache/` (see
/// [`crate::cache`]); pass `--no-trace-cache` to a recording binary or
/// set `TXRACE_NO_TRACE_CACHE` to always record fresh.
pub fn record_workload(w: &Workload, seed: u64) -> EventLog {
    crate::cache::load_or_record(w, seed, || record_workload_uncached(w, seed))
}

/// [`record_workload`] without the on-disk cache: always re-interprets
/// the program.
pub fn record_workload_uncached(w: &Workload, seed: u64) -> EventLog {
    Detector::new(w.config(Scheme::Tsan, seed)).record(&w.program)
}

/// Replays a recorded trace of `w` under `scheme`, producing the exact
/// outcome a live [`run_scheme`] call with the same seed would.
///
/// # Panics
///
/// Panics if `scheme` is TxRace (an active engine cannot run from a fixed
/// trace — use [`run_scheme`]) or if the recorded run did not complete.
pub fn replay_scheme(w: &Workload, log: &EventLog, scheme: Scheme, seed: u64) -> RunOutcome {
    let d = Detector::new(w.config(scheme, seed));
    let consumer = d.consumer(&w.program);
    let out = d.replay(log, consumer);
    assert!(out.completed(), "{}: recorded run did not complete", w.name);
    out
}

/// One scheme's result from a fan-out replay pass, with the observed
/// per-consumer timing (the observability the JSON rows expose).
#[derive(Debug)]
pub struct FanoutOutcome {
    /// The outcome, byte-identical to a serial [`replay_scheme`] call.
    pub outcome: RunOutcome,
    /// Wall time of this consumer's replay, in nanoseconds.
    pub wall_ns: u64,
    /// Events the consumer observed (the log length).
    pub events: u64,
}

/// Replays one recorded trace of `w` under every scheme in `schemes`
/// concurrently — a single [`txrace_sim::fan_out`] pass over the shared
/// log on `width` scoped threads — and returns the outcomes in scheme
/// order. Each outcome is byte-identical to the serial
/// [`replay_scheme`] result for that scheme: consumers are pure
/// observers with private state, so concurrency cannot change what any
/// of them sees.
///
/// # Panics
///
/// Panics like [`replay_scheme`] (TxRace schemes, incomplete runs).
pub fn replay_schemes_fanout(
    w: &Workload,
    log: &EventLog,
    schemes: &[Scheme],
    seed: u64,
    width: usize,
) -> Vec<FanoutOutcome> {
    let detectors: Vec<Detector> = schemes
        .iter()
        .map(|s| Detector::new(w.config(s.clone(), seed)))
        .collect();
    let consumers = detectors.iter().map(|d| d.consumer(&w.program)).collect();
    txrace_sim::fan_out(log, consumers, width)
        .into_iter()
        .zip(&detectors)
        .map(|(r, d)| {
            let outcome = d.outcome_of_replayed(r.consumer, log);
            assert!(
                outcome.completed(),
                "{}: recorded run did not complete",
                w.name
            );
            FanoutOutcome {
                outcome,
                wall_ns: r.wall_ns,
                events: r.events,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txrace_workloads::by_name;

    #[test]
    fn evaluate_runs_both_detectors() {
        let w = by_name("blackscholes", 2).unwrap();
        let r = evaluate_app(&w, EvalOptions::default());
        assert!(r.tsan.completed() && r.txrace.completed());
        assert!(r.recall >= 0.0 && r.recall <= 1.0);
        assert!(r.txrace.htm.is_some());
        assert!(r.tsan.htm.is_none());
    }

    #[test]
    fn fanout_replay_matches_serial_per_scheme() {
        let w = by_name("bodytrack", 2).unwrap();
        let log = record_workload_uncached(&w, 7);
        let schemes = [
            Scheme::Tsan,
            Scheme::TsanSampling { rate: 0.1 },
            Scheme::TsanSampling { rate: 0.5 },
        ];
        let fanned = replay_schemes_fanout(&w, &log, &schemes, 7, 3);
        assert_eq!(fanned.len(), schemes.len());
        for (f, scheme) in fanned.iter().zip(&schemes) {
            let serial = replay_scheme(&w, &log, scheme.clone(), 7);
            assert_eq!(f.outcome.races.reports(), serial.races.reports());
            assert_eq!(f.outcome.breakdown, serial.breakdown);
            assert_eq!(f.outcome.checks, serial.checks);
            assert_eq!(f.events, log.len() as u64);
        }
    }

    #[test]
    fn replayed_scheme_matches_live_run() {
        let w = by_name("bodytrack", 2).unwrap();
        let log = record_workload(&w, 7);
        for scheme in [Scheme::Tsan, Scheme::TsanSampling { rate: 0.4 }] {
            let live = run_scheme(&w, scheme.clone(), 7);
            let replayed = replay_scheme(&w, &log, scheme, 7);
            assert_eq!(live.races.reports(), replayed.races.reports());
            assert_eq!(live.breakdown, replayed.breakdown);
            assert_eq!(live.baseline_cycles, replayed.baseline_cycles);
            assert_eq!(live.checks, replayed.checks);
            assert_eq!(live.memory, replayed.memory);
            assert_eq!(live.run, replayed.run);
        }
    }
}
