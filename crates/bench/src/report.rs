//! Formatting helpers for paper-style console tables.

/// Geometric mean of positive values (1.0 for an empty slice).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Formats an overhead factor like the paper ("4.65x").
pub fn fmt_x(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.2}x")
    }
}

/// A simple fixed-width console table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn fmt_x_switches_precision() {
        assert_eq!(fmt_x(4.651), "4.65x");
        assert_eq!(fmt_x(1195.0), "1195x");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["app", "overhead"]);
        t.row(vec!["vips".into(), "63.3x".into()]);
        let s = t.render();
        assert!(s.contains("app"));
        assert!(s.contains("vips"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_checks_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}

/// A minimal JSON value for machine-readable harness output (kept
/// dependency-free on purpose; the approved crate list has no JSON
/// serializer).
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// An integer.
    Int(u64),
    /// A float (rendered with full precision).
    Num(f64),
    /// A string (escaped minimally: quotes and backslashes).
    Str(String),
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonValue::Int(v) => write!(f, "{v}"),
            JsonValue::Num(v) => write!(f, "{v}"),
            JsonValue::Str(s) => {
                write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
            }
        }
    }
}

/// Renders an array of flat objects as a JSON document.
pub fn json_rows(rows: &[Vec<(&str, JsonValue)>]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        for (j, (k, v)) in row.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {v}"));
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn renders_valid_flat_json() {
        let rows = vec![
            vec![
                ("app", JsonValue::Str("vips \"x\"".into())),
                ("overhead", JsonValue::Num(34.5)),
                ("races", JsonValue::Int(60)),
            ],
            vec![("app", JsonValue::Str("x264".into()))],
        ];
        let s = json_rows(&rows);
        assert!(s.starts_with('['));
        assert!(s.contains("\"app\": \"vips \\\"x\\\"\""));
        assert!(s.contains("\"overhead\": 34.5"));
        assert!(s.trim_end().ends_with(']'));
    }
}
