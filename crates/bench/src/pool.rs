//! A tiny job pool for fanning independent benchmark cells across cores.
//!
//! Every table/figure in the evaluation is a grid of independent
//! (workload × seed × config) cells; each cell is a deterministic
//! detector run. The pool executes the cells on `std::thread` workers
//! pulling indices from a shared atomic counter, then reassembles the
//! results **in input order**, so the rendered report is byte-identical
//! to a serial run regardless of worker count or completion order.
//!
//! No work-stealing, channels, or external dependencies: cells are
//! coarse (milliseconds to seconds each), so a single fetch-add per cell
//! is free compared to the work it dispatches.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(index, &item)` over all `items`, fanning across `pool_workers`
/// OS threads, and returns the results in input order.
///
/// `pool_workers <= 1` (or a single item) degenerates to a plain serial
/// loop on the calling thread — the reference behaviour the parallel
/// path must reproduce byte-for-byte.
pub fn map_cells<T, R, F>(pool_workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = pool_workers.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// The pool width used by the benchmark binaries: `TXRACE_POOL` if set
/// (0 or 1 forces serial execution), otherwise the machine's available
/// parallelism.
pub fn pool_width() -> usize {
    if let Ok(v) = std::env::var("TXRACE_POOL") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..97).collect();
        let f = |i: usize, &x: &u64| -> u64 { x.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64) };
        let serial = map_cells(1, &items, f);
        for workers in [2, 3, 8, 64] {
            assert_eq!(serial, map_cells(workers, &items, f), "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(map_cells(8, &none, |_, &x| x).is_empty());
        assert_eq!(map_cells(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn results_keep_input_order_under_contention() {
        let items: Vec<usize> = (0..200).collect();
        let out = map_cells(16, &items, |i, &x| {
            // Vary per-cell latency so completion order scrambles.
            std::thread::sleep(std::time::Duration::from_micros((x % 7) as u64));
            i * 2
        });
        assert_eq!(out, (0..200).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_width_is_positive() {
        assert!(pool_width() >= 1);
    }
}
