//! End-to-end Criterion benchmarks: full detector runs over selected
//! workloads, measuring simulator wall-clock per scheme. These track the
//! reproduction's own performance; the paper-shape numbers come from the
//! `table1`/`fig*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txrace::{Detector, Scheme};
use txrace_workloads::by_name;

/// A fast subset of apps covering the interesting regimes: conflict-heavy
/// (streamcluster), capacity-heavy (swaptions), tiny (raytrace), and
/// race-dense (x264).
const APPS: &[&str] = &["raytrace", "streamcluster", "swaptions", "x264"];

fn bench_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("endtoend");
    g.sample_size(10);
    for &name in APPS {
        let w = by_name(name, 4).expect("known app");
        g.bench_with_input(BenchmarkId::new("tsan", name), &w, |b, w| {
            b.iter(|| Detector::new(w.config(Scheme::Tsan, 42)).run(&w.program));
        });
        g.bench_with_input(BenchmarkId::new("txrace", name), &w, |b, w| {
            b.iter(|| Detector::new(w.config(Scheme::txrace(), 42)).run(&w.program));
        });
        g.bench_with_input(BenchmarkId::new("uninstrumented", name), &w, |b, w| {
            b.iter(|| {
                let mut m = txrace_sim::Machine::new(&w.program);
                let mut rt = txrace_sim::DirectRuntime::default();
                let mut s = txrace_sim::FairSched::new(42, 0.1);
                m.run(&mut rt, &mut s)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
