//! Criterion microbenchmarks for the substrate primitives: HTM access
//! paths, FastTrack checks, vector-clock operations, and the
//! instrumentation pass. These measure *simulator* throughput (how fast
//! the reproduction runs), not the modeled cycle costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use txrace::{instrument, InstrumentConfig};
use txrace_hb::{FastTrack, ShadowMode, VectorClock};
use txrace_htm::{HtmConfig, HtmSystem};
use txrace_sim::{
    Addr, DirectRuntime, LockId, Machine, Memory, ProgramBuilder, RandomSched, SiteId, ThreadId,
    WriteJournal,
};

fn bench_htm(c: &mut Criterion) {
    let mut g = c.benchmark_group("htm");
    g.bench_function("txn_begin_commit_empty", |b| {
        let mut htm = HtmSystem::new(HtmConfig::default(), 4);
        let mut mem = Memory::new();
        b.iter(|| {
            htm.xbegin(ThreadId(0)).unwrap();
            htm.xend(ThreadId(0), &mut mem).unwrap();
        });
    });
    g.bench_function("txn_8_writes_commit", |b| {
        let mut htm = HtmSystem::new(HtmConfig::default(), 4);
        let mut mem = Memory::new();
        b.iter(|| {
            htm.xbegin(ThreadId(0)).unwrap();
            for i in 0..8u64 {
                htm.write(ThreadId(0), &mut mem, Addr(0x1000 + i * 64), i);
            }
            htm.xend(ThreadId(0), &mut mem).unwrap();
        });
    });
    g.bench_function("conflict_scan_4_active_txns", |b| {
        let mut htm = HtmSystem::new(HtmConfig::default(), 5);
        let mut mem = Memory::new();
        for t in 0..4 {
            htm.xbegin(ThreadId(t)).unwrap();
            let _ = htm.read(ThreadId(t), &mut mem, Addr(0x2000 + u64::from(t) * 64));
        }
        b.iter(|| {
            // Non-conflicting non-transactional read scans all four txns.
            black_box(htm.read(ThreadId(4), &mut mem, Addr(0x9000)));
        });
    });
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    // Snapshot/restore strategies over a populated memory: the clone
    // baseline pays O(written cells) per checkpoint, the journal pays
    // O(stores in the speculative region).
    let mut g = c.benchmark_group("snapshot");
    let populated = || {
        let mut m = Memory::new();
        for i in 0..4096u64 {
            m.store(Addr(i * 8), i);
        }
        m
    };
    g.bench_function("clone_restore_4k_cells_8_writes", |b| {
        let mut mem = populated();
        b.iter(|| {
            let snap = black_box(mem.clone());
            for i in 0..8u64 {
                mem.store(Addr(i * 8), 999);
            }
            mem = black_box(snap);
        });
    });
    g.bench_function("journal_rollback_8_writes", |b| {
        let mut mem = populated();
        let mut j = WriteJournal::new();
        b.iter(|| {
            let mark = j.mark();
            for i in 0..8u64 {
                mem.store_logged(Addr(i * 8), 999, &mut j);
            }
            j.rollback_to(&mut mem, mark);
        });
    });
    g.bench_function("journal_commit_8_writes", |b| {
        let mut mem = populated();
        let mut j = WriteJournal::new();
        b.iter(|| {
            let mark = j.mark();
            for i in 0..8u64 {
                mem.store_logged(Addr(i * 8), 999, &mut j);
            }
            j.commit_to(mark);
        });
    });
    g.finish();
}

fn bench_fasttrack(c: &mut Criterion) {
    let mut g = c.benchmark_group("fasttrack");
    g.bench_function("read_same_epoch", |b| {
        let mut ft = FastTrack::new(4, ShadowMode::Exact);
        ft.read(ThreadId(0), SiteId(1), Addr(0x100));
        b.iter(|| ft.read(ThreadId(0), SiteId(1), Addr(0x100)));
    });
    g.bench_function("write_alternating_threads", |b| {
        let mut ft = FastTrack::new(4, ShadowMode::Exact);
        let mut t = 0u32;
        b.iter(|| {
            // Alternating same-address writes: the racy path with a report
            // dedup hit each time after the first.
            ft.write(ThreadId(t % 4), SiteId(t % 4 + 1), Addr(0x200));
            t += 1;
        });
    });
    g.bench_function("lock_acquire_release", |b| {
        let mut ft = FastTrack::new(4, ShadowMode::Exact);
        b.iter(|| {
            ft.lock_acquire(ThreadId(0), LockId(0));
            ft.lock_release(ThreadId(0), LockId(0));
        });
    });
    g.bench_function("vector_clock_join_16", |b| {
        let mut a = VectorClock::zero(16);
        let mut other = VectorClock::zero(16);
        for t in 0..16 {
            other.inc(ThreadId(t));
        }
        b.iter(|| a.join(black_box(&other)));
    });
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    // Interpreter dispatch over the packed 16-byte instruction stream:
    // a loop-heavy 4-thread program stepped end-to-end under the no-op
    // DirectRuntime, so the measurement is decode + dispatch + scheduler,
    // not detection. This is the hot loop the packed `Instr` layout and
    // hot-first `InstrKind` ordering exist for.
    let mut b = ProgramBuilder::new(4);
    let l = b.lock_id("l");
    for t in 0..4 {
        let arr = b.array(&format!("a{t}"), 64);
        b.thread(t).loop_n(200, |tb| {
            for i in 0..8 {
                tb.read(txrace_sim::elem(arr, i));
                tb.write(txrace_sim::elem(arr, i), i as u64);
            }
            tb.lock(l).rmw(txrace_sim::elem(arr, 0), 1).unlock(l);
            tb.compute(4);
        });
    }
    let p = b.build();

    let mut g = c.benchmark_group("dispatch");
    g.bench_function("machine_step_loop_heavy_4x200", |bch| {
        bch.iter(|| {
            let mut m = Machine::new(black_box(&p));
            let mut rt = DirectRuntime::default();
            let mut sched = RandomSched::new(7);
            let res = m.run(&mut rt, &mut sched);
            black_box((res.steps, rt.ops))
        });
    });
    g.finish();
}

fn bench_instrument(c: &mut Criterion) {
    let mut b = ProgramBuilder::new(4);
    let l = b.lock_id("l");
    for t in 0..4 {
        let arr = b.array(&format!("a{t}"), 64);
        b.thread(t).loop_n(100, |tb| {
            for i in 0..8 {
                tb.read(txrace_sim::elem(arr, i));
            }
            tb.lock(l).write(txrace_sim::elem(arr, 0), 1).unlock(l);
            tb.syscall(txrace_sim::SyscallKind::Io);
        });
    }
    let p = b.build();
    c.bench_function("instrument/transactionalize_4x100_regions", |bch| {
        bch.iter(|| instrument(black_box(&p), &InstrumentConfig::default()));
    });
}

criterion_group!(
    benches,
    bench_htm,
    bench_snapshot,
    bench_fasttrack,
    bench_dispatch,
    bench_instrument
);
criterion_main!(benches);
